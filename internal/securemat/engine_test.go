package securemat_test

// Session-level behavior of the secure compute engine: key-cache hits and
// eviction, tamper detection through the Engine methods, solver-less
// (client) sessions, and the shared-engine concurrency contract under the
// race detector (`make race`).

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/securemat"
)

// The dot-key cache must serve repeated weight matrices without touching
// the authority, and distinct matrices must never collide.
func TestEngineDotKeyCache(t *testing.T) {
	auth, eng := newFixture(t, 1_000_000)
	w1 := [][]int64{{1, 2}, {3, 4}}
	w2 := [][]int64{{1, 2}, {3, 5}} // differs in one entry
	k1, err := eng.DotKeys(w1)
	if err != nil {
		t.Fatal(err)
	}
	k1b, err := eng.DotKeys(w1)
	if err != nil {
		t.Fatal(err)
	}
	if k1[0] != k1b[0] || k1[1] != k1b[1] {
		t.Error("repeated DotKeys on the same W did not hit the cache")
	}
	if hits, misses := eng.DotKeyCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	st := auth.Stats()
	if st.IPKeys != 2 {
		t.Errorf("authority issued %d keys; the cached call must not re-derive", st.IPKeys)
	}
	k2, err := eng.DotKeys(w2)
	if err != nil {
		t.Fatal(err)
	}
	if k2[1] == k1[1] {
		t.Error("distinct matrices shared a cache entry")
	}
	// Cached keys must decrypt correctly.
	x := [][]int64{{5, 6}, {7, 8}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.SecureDot(enc, k1b, w1, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(z, plainDot(w1, x)) {
		t.Error("cache-served keys decrypted incorrectly")
	}
}

// A capacity-1 cache must evict the oldest matrix and keep serving correct
// keys for whatever it currently holds.
func TestEngineDotKeyCacheEviction(t *testing.T) {
	auth, base := newFixture(t, 1_000_000)
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: base.Solver(), DotKeyCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	w1 := [][]int64{{1, 2}}
	w2 := [][]int64{{3, 4}}
	for _, w := range [][][]int64{w1, w2, w1} { // second w1 call re-misses
		if _, err := eng.DotKeys(w); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := eng.DotKeyCacheStats(); hits != 0 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 0/3 after eviction churn", hits, misses)
	}
	// Mutating the caller's matrix after caching must not poison the cache.
	w3 := [][]int64{{9, 9}}
	keys3, err := eng.DotKeys(w3)
	if err != nil {
		t.Fatal(err)
	}
	w3[0][0] = 1
	keys3b, err := eng.DotKeys([][]int64{{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if keys3[0] != keys3b[0] {
		t.Error("cache lost the entry for the original matrix values")
	}
}

// Dot and Elementwise fold key derivation into the computation; the results
// must match the explicit two-step path.
func TestEngineConvenienceMethods(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(31))
	x := randMatrix(rng, 4, 5, -10, 10)
	w := randMatrix(rng, 2, 4, -10, 10)
	d := randMatrix(rng, 3, 5, -10, 10)
	y := randMatrix(rng, 4, 5, -10, 10)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{WithRows: true})
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.Dot(enc, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(z, plainDot(w, x)) {
		t.Error("Dot mismatch")
	}
	if _, err := eng.DotRows(enc, d, securemat.ComputeOptions{}); err != nil {
		t.Fatal(err)
	}
	s, err := eng.Elementwise(enc, securemat.ElementwiseAdd, y, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			if s[i][j] != x[i][j]+y[i][j] {
				t.Fatalf("Elementwise (%d,%d) = %d, want %d", i, j, s[i][j], x[i][j]+y[i][j])
			}
		}
	}
}

// An engine without a solver encrypts but refuses to decrypt.
func TestEngineWithoutSolver(t *testing.T) {
	auth, withSolver := newFixture(t, 1000)
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := [][]int64{{1, 2}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{WithRows: true})
	if err != nil {
		t.Fatalf("encrypt-only session must encrypt: %v", err)
	}
	w := [][]int64{{3}}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrNoSolver) {
		t.Errorf("SecureDot: err = %v, want ErrNoSolver", err)
	}
	if _, err := eng.DotRows(enc, [][]int64{{1, 2}}, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrNoSolver) {
		t.Errorf("DotRows: err = %v, want ErrNoSolver", err)
	}
	if _, err := eng.Elementwise(enc, securemat.ElementwiseAdd, x, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrNoSolver) {
		t.Errorf("Elementwise: err = %v, want ErrNoSolver", err)
	}
	// The derived view shares caches but gains the solver.
	z, err := eng.WithSolver(withSolver.Solver()).Dot(enc, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(z, plainDot(w, x)) {
		t.Error("WithSolver view decrypted incorrectly")
	}
}

// DotKeysUncached must bypass the cache entirely: counters untouched,
// fresh derivation every call, correct keys.
func TestEngineDotKeysUncached(t *testing.T) {
	auth, eng := newFixture(t, 1_000_000)
	w := [][]int64{{2, 3}}
	if _, err := eng.DotKeysUncached(w); err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeysUncached(w)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := eng.DotKeyCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("stats = %d/%d, want 0/0 — uncached path touched the cache", hits, misses)
	}
	if st := auth.Stats(); st.IPKeys != 2 {
		t.Errorf("authority issued %d keys, want 2 (one per uncached call)", st.IPKeys)
	}
	x := [][]int64{{1, 1}, {1, 1}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(z, plainDot(w, x)) {
		t.Error("uncached keys decrypted incorrectly")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := securemat.NewEngine(nil, securemat.EngineOptions{}); err == nil {
		t.Error("nil key service accepted")
	}
}

// A function key derived for a different (op, y) pair must never decrypt
// to the honest result through the Engine's in-domain pipeline.
func TestEngineElementwiseWrongKeyDetected(t *testing.T) {
	_, eng := newFixture(t, 10_000)
	x := [][]int64{{21}}
	y := [][]int64{{2}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Keys for addition, presented as multiplication keys.
	addKeys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SecureElementwise(enc, addKeys, securemat.ElementwiseMul, y, securemat.ComputeOptions{})
	if err == nil && got[0][0] == 42 {
		t.Error("wrong-op key still produced the honest product")
	}
}

// Non-exact division through the Engine: the in-domain path must surface
// febo's inexact-division failure as a not-found with cell coordinates.
func TestEngineInexactDivision(t *testing.T) {
	_, eng := newFixture(t, 10_000)
	x := [][]int64{{84, 85}}
	y := [][]int64{{7, 7}} // 85/7 is not integral
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseDiv, y)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.SecureElementwise(enc, keys, securemat.ElementwiseDiv, y, securemat.ComputeOptions{})
	if !errors.Is(err, dlog.ErrNotFound) {
		t.Fatalf("err = %v, want dlog.ErrNotFound for the inexact cell", err)
	}
	if !strings.Contains(err.Error(), "cell (0,1)") {
		t.Errorf("err %q does not name the inexact cell", err)
	}
}

// One Engine shared by many goroutines running the full pipeline
// concurrently — the session caches (public keys, dot keys, scratch pool)
// under the race detector.
func TestEngineSharedAcrossGoroutinesHammer(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(77))
	x := randMatrix(rng, 5, 6, -9, 9)
	w := randMatrix(rng, 2, 5, -9, 9)
	y := randMatrix(rng, 5, 6, -9, 9)
	wantDot := plainDot(w, x)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				enc, err := eng.Encrypt(x, securemat.EncryptOptions{WithRows: true, Parallelism: 2})
				if err != nil {
					errs <- err
					return
				}
				z, err := eng.Dot(enc, w, securemat.ComputeOptions{Parallelism: 2})
				if err != nil {
					errs <- err
					return
				}
				if !matEqual(z, wantDot) {
					errs <- errors.New("concurrent Dot mismatch")
					return
				}
				s, err := eng.Elementwise(enc, securemat.ElementwiseAdd, y, securemat.ComputeOptions{Parallelism: 2})
				if err != nil {
					errs <- err
					return
				}
				if s[0][0] != x[0][0]+y[0][0] {
					errs <- errors.New("concurrent Elementwise mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// The legacy stateless wrappers must keep working for one release; this is
// their only remaining in-repo exercise.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	auth, eng := newFixture(t, 1_000_000)
	solver := eng.Solver()
	x := [][]int64{{1, 2}, {3, 4}}
	w := [][]int64{{1, -1}}
	//lint:ignore SA1019 transitional wrapper under test
	enc, err := securemat.Encrypt(auth, x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 transitional wrapper under test
	keys, err := securemat.DotKeys(auth, w)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 transitional wrapper under test
	z, err := securemat.SecureDot(auth, enc, keys, w, solver, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(z, plainDot(w, x)) {
		t.Error("wrapper SecureDot mismatch")
	}
	y := [][]int64{{1, 1}, {1, 1}}
	//lint:ignore SA1019 transitional wrapper under test
	ewKeys, err := securemat.ElementwiseKeys(auth, enc, securemat.ElementwiseAdd, y)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 transitional wrapper under test
	s, err := securemat.SecureElementwise(auth, enc, ewKeys, securemat.ElementwiseAdd, y, solver, securemat.ComputeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s[1][1] != 5 {
		t.Error("wrapper SecureElementwise mismatch")
	}
}
