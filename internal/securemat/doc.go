// Package securemat implements the paper's secure matrix computation
// scheme (Algorithm 1): matrix dot-products and element-wise arithmetic
// over functionally encrypted matrices.
//
// The central type is Engine, a session object for the protocol's three
// long-lived roles (Fig. 1):
//
//   - the client builds an Engine over its key-service connection and
//     pre-processes plaintext matrices into EncryptedMatrix values
//     (Engine.Encrypt): every column is encrypted under FEIP for
//     dot-products and every element under FEBO for element-wise
//     arithmetic, on pooled per-worker ciphertext slabs;
//   - the server's Engine obtains function-derived keys from the authority
//     (Engine.DotKeys, Engine.ElementwiseKeys) — dot-product keys are
//     cached per weight matrix, so serving predictions with a fixed W
//     derives its keys exactly once;
//   - the server then evaluates the permitted function over ciphertexts
//     (Engine.SecureDot, Engine.SecureDotRows, Engine.SecureElementwise,
//     or the key-folding conveniences Dot/DotRows/Elementwise), obtaining
//     a plaintext result matrix.
//
// # Session and concurrency contract
//
// An Engine resolves public keys once per dimension, owns the shared
// bounded discrete-log solver (WithSolver derives a view with a different
// bound over the same caches) and the session's default parallelism, and
// is safe for concurrent use by any number of goroutines. Methods hand
// out pointers into the session caches (public keys, cached function
// keys); callers must treat them as read-only, exactly as with values
// received from a KeyService.
//
// Decryption is the expensive step (one bounded discrete log per output
// element); as in the paper (§III-C), every Secure* method drains output
// cells on a chunked worker pipeline — the "P" curves of Fig. 3d/4d/5d —
// and stays in the Montgomery domain end to end: numerators come off
// fixed-base/multi-exponentiation ladders as raw limb elements, each
// chunk's denominators share one batched modular inversion (Montgomery's
// trick), and the quotients feed dlog.LookupMont directly.
//
// One deliberate extension over the paper's Algorithm 1: Encrypt can also
// encrypt the matrix row-wise (dual orientation). The paper's Algorithm 2
// needs the first-layer weight gradient dW = dZ·Xᵀ during back-propagation
// but never spells out how to compute it when X is encrypted; inner
// products against rows of X (feature vectors across the batch) make it
// expressible in the very same FEIP machinery. See DESIGN.md §4.
//
// The package-level functions mirroring the methods (Encrypt, DotKeys,
// SecureDot, ...) are the pre-Engine stateless API, kept for one release
// as thin deprecated wrappers.
package securemat
