package securemat_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cryptonn/internal/securemat"
)

// TestEncryptParallelRoundTrip runs the full Algorithm 1 pipeline with the
// client-side encryption fanned out over workers: the parallel ciphertexts
// (columns, dual rows and elements) must decrypt to exactly the same
// plaintext results as the sequential path produces.
func TestEncryptParallelRoundTrip(t *testing.T) {
	const (
		inner = 6
		cols  = 7
		wRows = 3
	)
	_, eng := newFixture(t, int64(inner)*100+1)
	rng := rand.New(rand.NewSource(21))
	x := randMatrix(rng, inner, cols, -9, 9)
	w := randMatrix(rng, wRows, inner, -9, 9)
	d := randMatrix(rng, 2, cols, -9, 9)
	y := randMatrix(rng, inner, cols, -9, 9)
	for _, par := range []int{-1, 0, 4} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			enc, err := eng.Encrypt(x, securemat.EncryptOptions{
				WithRows:    true,
				Parallelism: par,
			})
			if err != nil {
				t.Fatalf("Encrypt: %v", err)
			}
			keys, err := eng.DotKeys(w)
			if err != nil {
				t.Fatal(err)
			}
			z, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{})
			if err != nil {
				t.Fatalf("SecureDot: %v", err)
			}
			if !matEqual(z, plainDot(w, x)) {
				t.Fatal("parallel-encrypted dot product mismatch")
			}
			rowKeys, err := eng.DotKeys(d)
			if err != nil {
				t.Fatal(err)
			}
			g, err := eng.SecureDotRows(enc, rowKeys, d, securemat.ComputeOptions{})
			if err != nil {
				t.Fatalf("SecureDotRows: %v", err)
			}
			xt := make([][]int64, cols)
			for j := range xt {
				xt[j] = make([]int64, inner)
				for i := 0; i < inner; i++ {
					xt[j][i] = x[i][j]
				}
			}
			if !matEqual(g, plainDot(d, xt)) {
				t.Fatal("parallel-encrypted row dot product mismatch")
			}
			ewKeys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, y)
			if err != nil {
				t.Fatal(err)
			}
			s, err := eng.SecureElementwise(enc, ewKeys, securemat.ElementwiseAdd, y, securemat.ComputeOptions{})
			if err != nil {
				t.Fatalf("SecureElementwise: %v", err)
			}
			for i := 0; i < inner; i++ {
				for j := 0; j < cols; j++ {
					if s[i][j] != x[i][j]+y[i][j] {
						t.Fatalf("elementwise (%d,%d) = %d, want %d", i, j, s[i][j], x[i][j]+y[i][j])
					}
				}
			}
		})
	}
}

// TestEncryptParallelHammer drives many concurrent parallel Encrypts over
// one key service — the shared-fixed-base-table contract (immutable after
// Precompute, sync.Once builds) under the race detector via `make race`.
func TestEncryptParallelHammer(t *testing.T) {
	_, eng := newFixture(t, 101)
	rng := rand.New(rand.NewSource(22))
	x := randMatrix(rng, 5, 8, -9, 9)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := eng.Encrypt(x, securemat.EncryptOptions{
					WithRows:    true,
					Parallelism: 2,
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
