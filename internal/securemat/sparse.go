// Sparse secure matrices: coordinate-form encryption, support-masked keys,
// and top-k decryption for extreme multi-label workloads.
//
// A bag-of-words batch (η in the tens of thousands, >95% zeros) pays the
// dense pipeline's full η+1 exponentiations per column even though almost
// every coordinate encrypts a zero. The sparse pipeline instead encrypts
// only each column's support (feip.SparseCiphertext), derives
// support-masked function keys (⟨w_i, x⟩ = ⟨w_i·1_supp, x⟩ since x
// vanishes off-support), and — for wide output layers — solves the final
// discrete logs only for the top-k logits per sample (dlog.TopKMont).
//
// The density router: columns at or below EncryptOptions.SparseThreshold
// carry their true support; denser columns are padded to full width so
// their masked keys collapse to the ordinary full-row keys, which every
// promoted column then shares (one derivation per W row instead of one per
// (row, column)). The threshold trades encryption work against key-request
// amplification — see docs/SPARSE.md for the measurement behind the
// default.

package securemat

import (
	"fmt"
	"io"
	"sync/atomic"

	"cryptonn/internal/dlog"
	"cryptonn/internal/feip"
)

// DefaultSparseThreshold is the column density at or below which
// Engine.EncryptSparse keeps a true (compact) support. Above it the column
// is padded to full width: the encryption saving shrinks linearly while
// the per-support key amplification cost stays, and at this point the
// shared full-row keys win (measured in BenchmarkICDEndToEnd's density
// sweep; see docs/SPARSE.md).
const DefaultSparseThreshold = 0.25

// SparseKeyService is an optional KeyService extension: derive the
// inner-product key for a support-restricted weight vector without the
// caller materializing the η-wide masked vector. The in-process authority
// and the wire clients (RemoteKeyService, KeyServicePool via
// KindIPKeySparse) implement it; services that lack it — the quorum client,
// whose nodes refuse whole-key kinds — fall back to dense masked IPKey
// requests, which hide the support entirely.
type SparseKeyService interface {
	KeyService
	// IPKeySparse derives sk = Σ_t vals[t]·s[idx[t]] mod q over the
	// η-dimensional FEIP master secret: the function key for the weight
	// vector that equals vals on idx and zero elsewhere.
	IPKeySparse(eta int, idx []int, vals []int64) (*feip.FunctionKey, error)
}

// SparseEncryptedMatrix is the coordinate-form counterpart of
// EncryptedMatrix: one sparse FEIP ciphertext per column, no row or
// element forms (the sparse pipeline is dot-product– and top-k–oriented).
type SparseEncryptedMatrix struct {
	// Rows and Cols are the plaintext dimensions (Rows = η).
	Rows, Cols int
	// ColCts[j] encrypts column j of X in coordinate form.
	ColCts []*feip.SparseCiphertext
}

// Nnz returns the total number of explicitly encrypted coordinates.
func (m *SparseEncryptedMatrix) Nnz() int {
	n := 0
	for _, ct := range m.ColCts {
		n += ct.Nnz()
	}
	return n
}

// Density returns the carried fraction of the full Rows×Cols volume.
func (m *SparseEncryptedMatrix) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.Nnz()) / (float64(m.Rows) * float64(m.Cols))
}

// sparseCounters is the engine's sparsity observability state, updated
// atomically by the sparse paths and snapshotted by SparseStats.
type sparseCounters struct {
	sparseColumns   atomic.Uint64 // columns carried in compact coordinate form
	promotedColumns atomic.Uint64 // columns padded to full width by the router
	skippedCoords   atomic.Uint64 // zero coordinates never encrypted
	encryptedCoords atomic.Uint64 // coordinates actually encrypted (sparse path)
	maskedKeys      atomic.Uint64 // support-masked function keys derived
	paddedSupports  atomic.Uint64 // distinct supports widened to a bucket boundary
	padCoords       atomic.Uint64 // zero coordinates added across padded key requests
	topkSolved      atomic.Uint64 // dlogs recovered by top-k scans
	topkSkipped     atomic.Uint64 // dlogs avoided by top-k scans
	topkRounds      atomic.Uint64 // giant-step rounds executed by top-k scans
}

// SparseStats is a point-in-time snapshot of the engine's sparse-path
// counters: how many columns took which route, how much encryption work
// the support representation skipped, and what the top-k scans solved
// versus avoided.
type SparseStats struct {
	SparseColumns   uint64
	PromotedColumns uint64
	SkippedCoords   uint64
	EncryptedCoords uint64
	MaskedKeys      uint64
	PaddedSupports  uint64
	PadCoords       uint64
	TopKSolved      uint64
	TopKSkipped     uint64
	TopKRounds      uint64
}

// SparseStats snapshots the session's sparse-path counters.
func (e *Engine) SparseStats() SparseStats {
	c := &e.shared.sparse
	return SparseStats{
		SparseColumns:   c.sparseColumns.Load(),
		PromotedColumns: c.promotedColumns.Load(),
		SkippedCoords:   c.skippedCoords.Load(),
		EncryptedCoords: c.encryptedCoords.Load(),
		MaskedKeys:      c.maskedKeys.Load(),
		PaddedSupports:  c.paddedSupports.Load(),
		PadCoords:       c.padCoords.Load(),
		TopKSolved:      c.topkSolved.Load(),
		TopKSkipped:     c.topkSkipped.Load(),
		TopKRounds:      c.topkRounds.Load(),
	}
}

// WriteMetrics emits the sparse-path counters in Prometheus text format,
// satisfying wire.MetricsSource structurally so a server can mount the
// engine on its /metrics endpoint without securemat importing wire.
func (e *Engine) WriteMetrics(w io.Writer) {
	s := e.SparseStats()
	hits, misses := e.DotKeyCacheStats()
	emit := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	emit("cryptonn_securemat_sparse_columns_total", "Columns encrypted in compact coordinate form.", s.SparseColumns)
	emit("cryptonn_securemat_promoted_columns_total", "Columns padded to full width by the density router.", s.PromotedColumns)
	emit("cryptonn_securemat_skipped_coords_total", "Zero coordinates never encrypted by the sparse path.", s.SkippedCoords)
	emit("cryptonn_securemat_encrypted_coords_total", "Coordinates encrypted by the sparse path.", s.EncryptedCoords)
	emit("cryptonn_securemat_masked_keys_total", "Support-masked function keys derived.", s.MaskedKeys)
	emit("cryptonn_securemat_padded_supports_total", "Distinct supports widened to a size-class bucket by the padding policy.", s.PaddedSupports)
	emit("cryptonn_securemat_pad_coords_total", "Zero coordinates added across padded coordinate-form key requests.", s.PadCoords)
	emit("cryptonn_securemat_topk_solved_total", "Discrete logs recovered by top-k scans.", s.TopKSolved)
	emit("cryptonn_securemat_topk_skipped_total", "Discrete logs avoided by top-k scans.", s.TopKSkipped)
	emit("cryptonn_securemat_topk_rounds_total", "Giant-step rounds executed by top-k scans.", s.TopKRounds)
	emit("cryptonn_securemat_dotkey_cache_hits_total", "Dot-product key cache hits.", hits)
	emit("cryptonn_securemat_dotkey_cache_misses_total", "Dot-product key cache misses.", misses)
}

// EncryptSparse encrypts X column-by-column in coordinate form, routing
// each column by its density: at or below opts.SparseThreshold (0 selects
// DefaultSparseThreshold, negative disables promotion entirely) the column
// carries only its non-zero coordinates; above it the column is padded to
// full width so its function keys stay support-independent and shared.
// Only column-orientation dot products are supported on the result, so
// opts.WithRows is rejected and opts.SkipElems is implied.
func (e *Engine) EncryptSparse(x [][]int64, opts EncryptOptions) (*SparseEncryptedMatrix, error) {
	rows, cols, err := Shape(x)
	if err != nil {
		return nil, err
	}
	if opts.WithRows {
		return nil, fmt.Errorf("%w: sparse encryption is column-oriented only", ErrShape)
	}
	thr := opts.SparseThreshold
	if thr == 0 {
		thr = DefaultSparseThreshold
	} else if thr < 0 {
		thr = 1 // density can never exceed 1: promotion disabled
	}
	workers := e.workers(opts.Parallelism)
	mpk, err := e.FEIPPublic(rows)
	if err != nil {
		return nil, err
	}
	mpk.Precompute()
	newScratch, release := e.encScratchSource()
	defer release()
	enc := &SparseEncryptedMatrix{Rows: rows, Cols: cols}
	enc.ColCts = make([]*feip.SparseCiphertext, cols)
	var nSparse, nPromoted, nEnc, nSkip uint64
	counts := &e.shared.sparse
	err = forEachChunk(cols, 1, workers, newScratch,
		func(start, end int, sc *encScratch) error {
			if cap(sc.colBuf) < rows {
				sc.colBuf = make([]int64, rows)
			}
			colBuf := sc.colBuf[:rows]
			for j := start; j < end; j++ {
				nnz := 0
				for i := 0; i < rows; i++ {
					colBuf[i] = x[i][j]
					if colBuf[i] != 0 {
						nnz++
					}
				}
				var idx []int
				var vals []int64
				if float64(nnz)/float64(rows) > thr {
					idx, vals = sc.fullSupport(rows), colBuf
					atomic.AddUint64(&nPromoted, 1)
				} else {
					idx, vals = sc.support(colBuf)
					atomic.AddUint64(&nSparse, 1)
					atomic.AddUint64(&nSkip, uint64(rows-nnz))
				}
				atomic.AddUint64(&nEnc, uint64(len(idx)))
				ct, err := feip.EncryptSparseWithScratch(mpk, idx, vals, nil, &sc.fe)
				if err != nil {
					return fmt.Errorf("securemat: sparse-encrypting column %d: %w", j, err)
				}
				enc.ColCts[j] = ct
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	counts.sparseColumns.Add(nSparse)
	counts.promotedColumns.Add(nPromoted)
	counts.skippedCoords.Add(nSkip)
	counts.encryptedCoords.Add(nEnc)
	return enc, nil
}

// SparseDotKeys derives the support-masked keys for W against every column
// of enc: keys[j][i] is the function key for row i of W masked to column
// j's support. Columns sharing a support (all promoted columns do) share
// one derivation. The SparseKeyService fast path sends coordinate-form
// requests; other services receive ordinary IPKey requests over an η-wide
// masked buffer that is reused across rows.
func (e *Engine) SparseDotKeys(enc *SparseEncryptedMatrix, w [][]int64) ([][]*feip.FunctionKey, error) {
	wRows, wCols, err := Shape(w)
	if err != nil {
		return nil, err
	}
	if wCols != enc.Rows {
		return nil, fmt.Errorf("%w: W is %dx%d but encrypted X has %d rows", ErrShape, wRows, wCols, enc.Rows)
	}
	ks := e.shared.ks
	sks, hasSparse := ks.(SparseKeyService)
	var masked []int64 // dense-fallback scratch, zeroed after each use
	if !hasSparse {
		masked = make([]int64, enc.Rows)
	}
	colKeys := make([][]*feip.FunctionKey, enc.Cols)
	bySupport := make(map[string][]*feip.FunctionKey)
	ys := make([]int64, 0, enc.Rows)
	var derived, padded, padZeros uint64
	for j, ct := range enc.ColCts {
		if ct == nil {
			return nil, fmt.Errorf("%w: nil sparse ciphertext %d", ErrShape, j)
		}
		if ct.Eta != enc.Rows {
			return nil, fmt.Errorf("%w: ciphertext %d has η=%d, want %d", ErrShape, j, ct.Eta, enc.Rows)
		}
		sig := supportSig(ct.Idx)
		if keys, ok := bySupport[sig]; ok {
			colKeys[j] = keys
			continue
		}
		// Support-hiding padding: a coordinate-form key request exposes its
		// support to the authority and the wire, so widen it to the
		// configured size-class bucket with zero-valued coordinates. Zero
		// values contribute nothing to sk = Σ vals·s[idx], so the derived
		// key — and decryption — is numerically identical to the unpadded
		// one; only the observed nnz changes. The dense fallback below
		// sends a full-η vector and needs no padding (the support is
		// already fully hidden).
		reqIdx := ct.Idx
		if hasSparse && len(e.shared.buckets) > 0 {
			reqIdx = padSupport(ct.Idx, enc.Rows, e.shared.buckets)
		}
		keys := make([]*feip.FunctionKey, wRows)
		for i, row := range w {
			ys = ys[:0]
			var fk *feip.FunctionKey
			var err error
			if hasSparse {
				// Gather w_i over the padded support: row values on the
				// true coordinates, zeros on the pads (both slices are
				// sorted, so a two-pointer merge suffices).
				p := 0
				for _, c := range reqIdx {
					if p < len(ct.Idx) && ct.Idx[p] == c {
						ys = append(ys, row[c])
						p++
					} else {
						ys = append(ys, 0)
					}
				}
				fk, err = sks.IPKeySparse(enc.Rows, reqIdx, ys)
			} else {
				for _, c := range ct.Idx {
					ys = append(ys, row[c])
				}
				for t, c := range ct.Idx {
					masked[c] = ys[t]
				}
				fk, err = ks.IPKey(masked)
				for _, c := range ct.Idx {
					masked[c] = 0
				}
			}
			if err != nil {
				return nil, fmt.Errorf("securemat: masked key for row %d, column %d: %w", i, j, err)
			}
			keys[i] = fk
		}
		derived += uint64(wRows)
		if pad := len(reqIdx) - len(ct.Idx); pad > 0 {
			padded++
			padZeros += uint64(pad) * uint64(wRows)
		}
		bySupport[sig] = keys
		colKeys[j] = keys
	}
	e.shared.sparse.maskedKeys.Add(derived)
	e.shared.sparse.paddedSupports.Add(padded)
	e.shared.sparse.padCoords.Add(padZeros)
	return colKeys, nil
}

// padSupport widens a sorted support to its size class: the smallest
// bucket ≥ len(idx), or full width when the support exceeds every bucket
// (so observed sizes always land in buckets ∪ {eta}). Pad coordinates are
// the smallest indices in [0, eta) outside the support, keeping the result
// sorted and duplicate-free. Returns idx itself when already on a boundary.
func padSupport(idx []int, eta int, buckets []int) []int {
	target := eta
	for _, b := range buckets {
		if b >= len(idx) {
			target = b
			break
		}
	}
	if target > eta {
		target = eta
	}
	if target <= len(idx) {
		return idx
	}
	out := make([]int, 0, target)
	p := 0
	for c := 0; c < eta && len(out) < target; c++ {
		if p < len(idx) && idx[p] == c {
			out = append(out, c)
			p++
			continue
		}
		// Non-support index: usable as a pad while slots beyond the
		// remaining true coordinates are still free.
		if len(out)+len(idx)-p < target {
			out = append(out, c)
		}
	}
	return out
}

// supportSig packs a support into a map key for per-call deduplication.
func supportSig(idx []int) string {
	b := make([]byte, 0, len(idx)*3)
	for _, i := range idx {
		for u := uint(i); ; u >>= 7 {
			if u < 0x80 {
				b = append(b, byte(u))
				break
			}
			b = append(b, byte(u)|0x80)
		}
	}
	return string(b)
}

// SecureDotSparse computes Z = W·X over a sparse encrypted matrix with the
// masked keys from SparseDotKeys, solving every output cell's discrete log
// (the sparse analogue of SecureDot). Each column's numerator walk touches
// only its nnz coordinates.
func (e *Engine) SecureDotSparse(enc *SparseEncryptedMatrix, keys [][]*feip.FunctionKey, w [][]int64, opts ComputeOptions) ([][]int64, error) {
	wRows, _, err := e.checkSparseDot(enc, keys, w)
	if err != nil {
		return nil, err
	}
	z := newMatrix(wRows, enc.Cols)
	solver := e.solver
	err = e.forEachSparseColumn(enc, keys, w, opts, func(j int, gammas []uint64) error {
		kl := len(gammas) / wRows
		for i := 0; i < wRows; i++ {
			v, err := solver.LookupMont(gammas[i*kl : (i+1)*kl])
			if err != nil {
				return fmt.Errorf("securemat: cell (%d,%d): %w", i, j, err)
			}
			z[i][j] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return z, nil
}

// DotSparse derives the masked keys and computes the sparse secure product
// in one call.
func (e *Engine) DotSparse(enc *SparseEncryptedMatrix, w [][]int64, opts ComputeOptions) ([][]int64, error) {
	keys, err := e.SparseDotKeys(enc, w)
	if err != nil {
		return nil, err
	}
	return e.SecureDotSparse(enc, keys, w, opts)
}

// SecureDotTopK computes, for each sample (column) of the batch, the k
// largest logits of W·X with their row indices — solving only those k
// discrete logs per column instead of all wRows (dlog's descending
// simultaneous scan; exactness argument in internal/dlog/topk.go). The
// result is one descending []dlog.TopKHit per column. The engine's top-k
// counters account every scan.
func (e *Engine) SecureDotTopK(enc *SparseEncryptedMatrix, keys [][]*feip.FunctionKey, w [][]int64, k int, opts ComputeOptions) ([][]dlog.TopKHit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("securemat: top-k count must be positive, got %d", k)
	}
	if _, _, err := e.checkSparseDot(enc, keys, w); err != nil {
		return nil, err
	}
	out := make([][]dlog.TopKHit, enc.Cols)
	counts := &e.shared.sparse
	err := e.forEachSparseColumn(enc, keys, w, opts, func(j int, gammas []uint64) error {
		var hits []dlog.TopKHit
		var stats dlog.TopKStats
		var err error
		if opts.InputMagnitude > 0 {
			ceiling := logitCeiling(w, enc.ColCts[j].Idx, opts.InputMagnitude, e.solver.Bound())
			hits, stats, err = e.solver.TopKMontBounded(gammas, k, ceiling)
		} else {
			hits, stats, err = e.solver.TopKMont(gammas, k)
		}
		if err != nil {
			return fmt.Errorf("securemat: top-%d of column %d: %w", k, j, err)
		}
		counts.topkSolved.Add(uint64(stats.Solved))
		counts.topkSkipped.Add(uint64(stats.Skipped))
		counts.topkRounds.Add(uint64(stats.Rounds))
		out[j] = hits
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DotTopK derives the masked keys and extracts the per-sample top-k in one
// call — the serving shape of the extreme multi-label head.
func (e *Engine) DotTopK(enc *SparseEncryptedMatrix, w [][]int64, k int, opts ComputeOptions) ([][]dlog.TopKHit, error) {
	keys, err := e.SparseDotKeys(enc, w)
	if err != nil {
		return nil, err
	}
	return e.SecureDotTopK(enc, keys, w, k, opts)
}

// logitCeiling bounds any output cell of the column with support idx:
// |⟨w_i, x⟩| ≤ Σ_{t∈supp}|w_i[t]|·mag. Sums are clamped at the solver
// bound (which already caps every decryptable value), so the plaintext
// walk cannot overflow and the ceiling never loosens past the bound.
func logitCeiling(w [][]int64, idx []int, mag, bound int64) int64 {
	limit := bound / mag
	var worst int64
	for _, row := range w {
		var sum int64
		for _, c := range idx {
			v := row[c]
			if v < 0 {
				v = -v
			}
			sum += v
			if sum >= limit || sum < 0 {
				return bound
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst * mag
}

func (e *Engine) checkSparseDot(enc *SparseEncryptedMatrix, keys [][]*feip.FunctionKey, w [][]int64) (wRows, wCols int, err error) {
	wRows, wCols, err = Shape(w)
	if err != nil {
		return 0, 0, err
	}
	if wCols != enc.Rows {
		return 0, 0, fmt.Errorf("%w: W is %dx%d but encrypted X has %d rows", ErrShape, wRows, wCols, enc.Rows)
	}
	if len(keys) != enc.Cols {
		return 0, 0, fmt.Errorf("%w: %d key columns for %d encrypted columns", ErrShape, len(keys), enc.Cols)
	}
	for j, ks := range keys {
		if len(ks) != wRows {
			return 0, 0, fmt.Errorf("%w: %d keys for column %d, want %d", ErrShape, len(ks), j, wRows)
		}
	}
	if e.solver == nil {
		return 0, 0, ErrNoSolver
	}
	return wRows, wCols, nil
}

// forEachSparseColumn runs the Montgomery-domain decryption pipeline over
// the columns of a sparse encrypted matrix: for column j it produces the
// flat slab gammas[i·kl : (i+1)·kl] = g^{⟨w_i, x_j⟩} (Montgomery form) for
// every row i of W, then hands the slab to sink. Column work parallelizes
// across opts.Parallelism workers; each column pays one denominator table,
// nnz-wide numerator ladders, and a single batched inversion — the same
// pipeline shape as decryptDotBatched with the column as the natural chunk.
func (e *Engine) forEachSparseColumn(enc *SparseEncryptedMatrix, keys [][]*feip.FunctionKey, w [][]int64, opts ComputeOptions, sink func(j int, gammas []uint64) error) error {
	mpk, err := e.FEIPPublic(enc.Rows)
	if err != nil {
		return err
	}
	p := mpk.Params
	mc := p.Mont()
	kl := mc.Limbs()
	wRows := len(w)
	workers := min(max(e.workers(opts.Parallelism), 1), enc.Cols)
	type colScratch struct {
		ys      []int64 // gathered weight values on the column support
		digits  [][]int16
		nums    []uint64 // numerator positive halves, wRows elements
		denNegs []uint64 // denominator negative halves
		ts      []uint64 // (numNeg · denPos), batch-inverted in place
		neg     []uint64
		inv     []uint64
		straus  []uint64
	}
	newScratch := func() *colScratch {
		return &colScratch{
			ys:      make([]int64, 0, enc.Rows),
			digits:  make([][]int16, wRows),
			nums:    make([]uint64, wRows*kl),
			denNegs: make([]uint64, wRows*kl),
			ts:      make([]uint64, wRows*kl),
			neg:     make([]uint64, kl),
		}
	}
	return forEachChunk(enc.Cols, 1, workers, newScratch,
		func(start, end int, sc *colScratch) error {
			for j := start; j < end; j++ {
				ct := enc.ColCts[j]
				// Denominators: one fixed-base table per column ct_0, one
				// signed recoding per (row, column) since masked keys are
				// support-specific.
				tab, err := p.NewFixedBaseTableWindow(ct.Ct0, 0, denTableWindow)
				if err != nil {
					return fmt.Errorf("securemat: denominator table for column %d: %w", j, err)
				}
				for i := 0; i < wRows; i++ {
					fk := keys[j][i]
					if fk == nil || fk.K == nil {
						return fmt.Errorf("%w: empty function key (%d,%d)", ErrShape, i, j)
					}
					sc.digits[i] = p.RecodeSigned(fk.K, denTableWindow, sc.digits[i])
					den := sc.ts[i*kl : (i+1)*kl]
					tab.PowRecoded(den, sc.denNegs[i*kl:(i+1)*kl], sc.digits[i])
					// Numerator over the support only: gather w_i on idx.
					sc.ys = sc.ys[:0]
					for _, c := range ct.Idx {
						sc.ys = append(sc.ys, w[i][c])
					}
					num := sc.nums[i*kl : (i+1)*kl]
					sc.straus = p.MultiExpInt64MontParts(num, sc.neg, ct.Ct, sc.ys, sc.straus)
					// Cell value = numPos·denNeg / (numNeg·denPos): fold the
					// numerator's negative half into the to-invert term.
					mc.MulMont(den, den, sc.neg)
				}
				var err2 error
				if sc.inv, err2 = mc.BatchInvMont(sc.ts[:wRows*kl], sc.inv); err2 != nil {
					return fmt.Errorf("securemat: batch inversion for column %d: %w", j, err2)
				}
				for i := 0; i < wRows; i++ {
					gamma := sc.ts[i*kl : (i+1)*kl]
					mc.MulMont(gamma, gamma, sc.nums[i*kl:(i+1)*kl])
					mc.MulMont(gamma, gamma, sc.denNegs[i*kl:(i+1)*kl])
				}
				if err := sink(j, sc.ts[:wRows*kl]); err != nil {
					return err
				}
			}
			return nil
		})
}
