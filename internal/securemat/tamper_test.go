package securemat_test

import (
	"math/big"
	"testing"

	"cryptonn/internal/securemat"
)

// Tamper tests: a ciphertext corrupted in transit must never decrypt to
// the original plaintext result silently. With the bounded discrete-log
// recovery, corruption almost surely lands outside the solver window and
// surfaces as an error; the assertions accept either an error or a value
// different from the true result (a silently *correct* result would mean
// the tampering had no effect, which is the one impossible outcome).

func TestTamperedDotCiphertextDetected(t *testing.T) {
	auth, eng := newFixture(t, 1000)
	x := [][]int64{{3, 1}, {2, 5}}
	w := [][]int64{{4, -2}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one ct_i of the first column: multiply by the generator
	// (shifts the encrypted coordinate by +1 in the exponent).
	params := auth.Params()
	enc.ColCts[0].Ct[0] = params.Mul(enc.ColCts[0].Ct[0], params.G)

	got, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 1})
	if err == nil && got[0][0] == want[0][0] {
		t.Errorf("tampered ciphertext decrypted to the original result %d", want[0][0])
	}
}

func TestTamperedCommitmentBreaksElementwiseKey(t *testing.T) {
	_, eng := newFixture(t, 1000)
	x := [][]int64{{7}}
	y := [][]int64{{5}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, y)
	if err != nil {
		t.Fatal(err)
	}

	// Swap the ciphertext for a fresh encryption of a different value:
	// the key is bound to the *old* commitment, so decryption must not
	// yield newValue + y.
	enc2, err := eng.Encrypt([][]int64{{20}}, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	enc.Elems[0][0] = enc2.Elems[0][0]
	got, err := eng.SecureElementwise(enc, keys, securemat.ElementwiseAdd, y,
		securemat.ComputeOptions{Parallelism: 1})
	if err == nil && got[0][0] == 25 {
		t.Error("key bound to a different commitment still decrypted the swapped ciphertext")
	}
}

func TestNonElementCiphertextRejected(t *testing.T) {
	_, eng := newFixture(t, 1000)
	x := [][]int64{{3, 1}}
	w := [][]int64{{2}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	// 0 is never a member of the multiplicative subgroup.
	enc.ColCts[0].Ct[0] = big.NewInt(0)
	if _, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 1}); err == nil {
		t.Error("zero 'group element' accepted in decryption")
	}
}
