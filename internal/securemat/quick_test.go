package securemat_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// quickState bundles the fixtures the property tests share; building the
// engine once keeps testing/quick's many iterations fast.
type quickState struct {
	eng *securemat.Engine
}

func newQuickState(t *testing.T, bound int64) *quickState {
	t.Helper()
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	solver, err := dlog.NewSolver(group.TestParams(), bound)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		t.Fatal(err)
	}
	return &quickState{eng: eng}
}

// boundedMatrix derives a rows×cols matrix with entries in [-limit,
// limit] from a random seed, so quick generates arbitrary but replayable
// inputs.
func boundedMatrix(seed int64, rows, cols int, limit int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]int64, rows)
	for i := range m {
		m[i] = make([]int64, cols)
		for j := range m[i] {
			m[i][j] = rng.Int63n(2*limit+1) - limit
		}
	}
	return m
}

// TestQuickSecureDotMatchesPlaintext: for arbitrary small matrices W and
// X, the secure dot-product over encrypted X equals the plaintext W·X.
func TestQuickSecureDotMatchesPlaintext(t *testing.T) {
	const (
		limit = 20
		maxD  = 4
	)
	st := newQuickState(t, int64(maxD)*limit*limit+1)
	prop := func(seed int64, d1, d2, d3 uint8) bool {
		rows := int(d1%maxD) + 1 // W rows
		inner := int(d2%maxD) + 1
		cols := int(d3%maxD) + 1 // X cols
		w := boundedMatrix(seed, rows, inner, limit)
		x := boundedMatrix(seed+1, inner, cols, limit)

		enc, err := st.eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
		if err != nil {
			t.Logf("encrypt: %v", err)
			return false
		}
		keys, err := st.eng.DotKeys(w)
		if err != nil {
			t.Logf("keys: %v", err)
			return false
		}
		z, err := st.eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 1})
		if err != nil {
			t.Logf("secure dot: %v", err)
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				var want int64
				for k := 0; k < inner; k++ {
					want += w[i][k] * x[k][j]
				}
				if z[i][j] != want {
					t.Logf("z[%d][%d] = %d, want %d", i, j, z[i][j], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickSecureElementwiseMatchesPlaintext: for arbitrary matrices and
// every basic op, secure element-wise computation equals plaintext.
func TestQuickSecureElementwiseMatchesPlaintext(t *testing.T) {
	const limit = 30
	st := newQuickState(t, limit*limit+1)
	prop := func(seed int64, d1, d2 uint8, opSel uint8) bool {
		rows := int(d1%3) + 1
		cols := int(d2%3) + 1
		fs := []securemat.Function{securemat.ElementwiseAdd, securemat.ElementwiseSub, securemat.ElementwiseMul}
		f := fs[int(opSel)%len(fs)]
		x := boundedMatrix(seed, rows, cols, limit)
		y := boundedMatrix(seed+2, rows, cols, limit)

		enc, err := st.eng.Encrypt(x, securemat.EncryptOptions{})
		if err != nil {
			return false
		}
		keys, err := st.eng.ElementwiseKeys(enc, f, y)
		if err != nil {
			return false
		}
		z, err := st.eng.SecureElementwise(enc, keys, f, y, securemat.ComputeOptions{Parallelism: 1})
		if err != nil {
			t.Logf("secure %s: %v", f, err)
			return false
		}
		op, _ := f.BasicOp()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want, err := op.Apply(x[i][j], y[i][j])
				if err != nil {
					return false
				}
				if z[i][j] != want {
					t.Logf("%s: z[%d][%d] = %d, want %d", f, i, j, z[i][j], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickDualOrientationAgree: the row-oriented ciphertexts encrypt the
// same matrix as the column-oriented ones — inner products taken against
// rows and columns are mutually consistent.
func TestQuickDualOrientationAgree(t *testing.T) {
	const limit = 15
	st := newQuickState(t, 4*limit*limit+1)
	prop := func(seed int64, d1, d2 uint8) bool {
		rows := int(d1%3) + 1
		cols := int(d2%3) + 1
		x := boundedMatrix(seed, rows, cols, limit)
		enc, err := st.eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true, WithRows: true})
		if err != nil {
			return false
		}
		if !enc.HasRows() {
			t.Log("WithRows did not produce row ciphertexts")
			return false
		}
		// Probe with an all-ones weight vector in both orientations:
		// summing column j via ColCts equals summing the j-th entries
		// of every row via RowCts probed one row at a time.
		onesCols := make([]int64, rows)
		for i := range onesCols {
			onesCols[i] = 1
		}
		colKeys, err := st.eng.DotKeys([][]int64{onesCols})
		if err != nil {
			return false
		}
		colSums, err := st.eng.SecureDot(enc, colKeys, [][]int64{onesCols}, securemat.ComputeOptions{Parallelism: 1})
		if err != nil {
			return false
		}
		onesRows := make([]int64, cols)
		for i := range onesRows {
			onesRows[i] = 1
		}
		rowKeys, err := st.eng.DotKeys([][]int64{onesRows})
		if err != nil {
			return false
		}
		rowSums, err := st.eng.SecureDotRows(enc, rowKeys, [][]int64{onesRows}, securemat.ComputeOptions{Parallelism: 1})
		if err != nil {
			return false
		}
		// Total over all entries must agree between orientations.
		var colTotal, rowTotal int64
		for j := 0; j < cols; j++ {
			colTotal += colSums[0][j]
		}
		for i := 0; i < rows; i++ {
			rowTotal += rowSums[0][i]
		}
		if colTotal != rowTotal {
			t.Logf("column total %d != row total %d", colTotal, rowTotal)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
