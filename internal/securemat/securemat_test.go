package securemat_test

import (
	"errors"
	"math/rand"
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// newFixture builds an in-process authority plus an Engine session over it
// with a solver at the given bound.
func newFixture(t testing.TB, bound int64) (*authority.Authority, *securemat.Engine) {
	t.Helper()
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatalf("authority.New: %v", err)
	}
	solver, err := dlog.NewSolver(group.TestParams(), bound)
	if err != nil {
		t.Fatalf("dlog.NewSolver: %v", err)
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		t.Fatalf("securemat.NewEngine: %v", err)
	}
	return auth, eng
}

func plainDot(w, x [][]int64) [][]int64 {
	rows, inner, cols := len(w), len(x), len(x[0])
	z := make([][]int64, rows)
	for i := range z {
		z[i] = make([]int64, cols)
		for j := 0; j < cols; j++ {
			var acc int64
			for k := 0; k < inner; k++ {
				acc += w[i][k] * x[k][j]
			}
			z[i][j] = acc
		}
	}
	return z
}

func matEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func randMatrix(rng *rand.Rand, rows, cols int, lo, hi int64) [][]int64 {
	m := make([][]int64, rows)
	for i := range m {
		m[i] = make([]int64, cols)
		for j := range m[i] {
			m[i][j] = lo + rng.Int63n(hi-lo+1)
		}
	}
	return m
}

func TestSecureDotMatchesPlaintext(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(11))
	x := randMatrix(rng, 4, 3, -20, 20) // 4 features x 3 samples
	w := randMatrix(rng, 2, 4, -20, 20) // 2 units x 4 features

	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatalf("DotKeys: %v", err)
	}
	z, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{})
	if err != nil {
		t.Fatalf("SecureDot: %v", err)
	}
	if want := plainDot(w, x); !matEqual(z, want) {
		t.Errorf("SecureDot = %v, want %v", z, want)
	}
}

func TestSecureDotParallelMatchesSequential(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(13))
	x := randMatrix(rng, 5, 6, -10, 10)
	w := randMatrix(rng, 3, 5, -10, 10)

	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !matEqual(seq, par) {
		t.Error("parallel result differs from sequential")
	}
}

func TestSecureDotRowsComputesDXT(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(17))
	x := randMatrix(rng, 4, 5, -10, 10) // 4 features x 5 samples
	d := randMatrix(rng, 3, 5, -10, 10) // 3 units x 5 samples (like dZ)

	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true, WithRows: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(d)
	if err != nil {
		t.Fatal(err)
	}
	g, err := eng.SecureDotRows(enc, keys, d, securemat.ComputeOptions{})
	if err != nil {
		t.Fatalf("SecureDotRows: %v", err)
	}
	// want = D · Xᵀ, i.e. want[i][k] = Σ_j d[i][j] * x[k][j]
	want := make([][]int64, 3)
	for i := range want {
		want[i] = make([]int64, 4)
		for k := 0; k < 4; k++ {
			for j := 0; j < 5; j++ {
				want[i][k] += d[i][j] * x[k][j]
			}
		}
	}
	if !matEqual(g, want) {
		t.Errorf("SecureDotRows = %v, want %v", g, want)
	}
}

func TestSecureElementwiseAllOps(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	x := [][]int64{{10, 20}, {-30, 40}}
	tests := []struct {
		name string
		f    securemat.Function
		y    [][]int64
		want [][]int64
	}{
		{"add", securemat.ElementwiseAdd, [][]int64{{1, 2}, {3, -4}}, [][]int64{{11, 22}, {-27, 36}}},
		{"sub", securemat.ElementwiseSub, [][]int64{{1, 2}, {3, -4}}, [][]int64{{9, 18}, {-33, 44}}},
		{"mul", securemat.ElementwiseMul, [][]int64{{2, -3}, {4, 5}}, [][]int64{{20, -60}, {-120, 200}}},
		{"div", securemat.ElementwiseDiv, [][]int64{{2, 4}, {-3, 8}}, [][]int64{{5, 5}, {10, 5}}},
	}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			keys, err := eng.ElementwiseKeys(enc, tt.f, tt.y)
			if err != nil {
				t.Fatalf("ElementwiseKeys: %v", err)
			}
			z, err := eng.SecureElementwise(enc, keys, tt.f, tt.y, securemat.ComputeOptions{})
			if err != nil {
				t.Fatalf("SecureElementwise: %v", err)
			}
			if !matEqual(z, tt.want) {
				t.Errorf("got %v, want %v", z, tt.want)
			}
		})
	}
}

func TestSecureElementwiseParallel(t *testing.T) {
	_, eng := newFixture(t, 1_000_000)
	rng := rand.New(rand.NewSource(29))
	x := randMatrix(rng, 6, 7, -50, 50)
	y := randMatrix(rng, 6, 7, -50, 50)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, y)
	if err != nil {
		t.Fatal(err)
	}
	z, err := eng.SecureElementwise(enc, keys, securemat.ElementwiseAdd, y, securemat.ComputeOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			if z[i][j] != x[i][j]+y[i][j] {
				t.Fatalf("cell (%d,%d): got %d want %d", i, j, z[i][j], x[i][j]+y[i][j])
			}
		}
	}
}

func TestShapeValidation(t *testing.T) {
	if _, _, err := securemat.Shape(nil); !errors.Is(err, securemat.ErrShape) {
		t.Error("nil matrix should fail")
	}
	if _, _, err := securemat.Shape([][]int64{{}}); !errors.Is(err, securemat.ErrShape) {
		t.Error("empty row should fail")
	}
	if _, _, err := securemat.Shape([][]int64{{1, 2}, {3}}); !errors.Is(err, securemat.ErrShape) {
		t.Error("ragged matrix should fail")
	}
	r, c, err := securemat.Shape([][]int64{{1, 2, 3}, {4, 5, 6}})
	if err != nil || r != 2 || c != 3 {
		t.Errorf("Shape = (%d,%d,%v)", r, c, err)
	}
}

func TestDimensionMismatchErrors(t *testing.T) {
	_, eng := newFixture(t, 1000)
	x := [][]int64{{1, 2}, {3, 4}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}

	wBad := [][]int64{{1, 2, 3}} // W cols != X rows
	keys, err := eng.DotKeys(wBad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SecureDot(enc, keys, wBad, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("mismatched W: err = %v", err)
	}

	yBad := [][]int64{{1, 2, 3}, {4, 5, 6}}
	if _, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, yBad); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("mismatched Y: err = %v", err)
	}

	if _, err := eng.ElementwiseKeys(enc, securemat.DotProduct, x); !errors.Is(err, securemat.ErrFunction) {
		t.Errorf("dot-product as elementwise: err = %v", err)
	}

	// Row orientation absent.
	if _, err := eng.SecureDotRows(enc, nil, [][]int64{{1, 2}}, securemat.ComputeOptions{}); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("missing row cts: err = %v", err)
	}
	// Element ciphertexts absent.
	encNoElems, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ElementwiseKeys(encNoElems, securemat.ElementwiseAdd, x); !errors.Is(err, securemat.ErrShape) {
		t.Errorf("missing elem cts: err = %v", err)
	}
}

func TestPolicyEnforcement(t *testing.T) {
	// An authority that only permits addition must reject other requests.
	auth, err := authority.New(group.TestParams(), authority.Policy{
		BasicOps: map[febo.Op]bool{febo.OpAdd: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auth.IPKey([]int64{1, 2}); !errors.Is(err, authority.ErrNotPermitted) {
		t.Errorf("IPKey: err = %v, want ErrNotPermitted", err)
	}
	x := [][]int64{{1}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ElementwiseKeys(enc, securemat.ElementwiseMul, x); !errors.Is(err, authority.ErrNotPermitted) {
		t.Errorf("mul key: err = %v, want ErrNotPermitted", err)
	}
	if _, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, x); err != nil {
		t.Errorf("add key should be permitted: %v", err)
	}
}

func TestAuthorityStats(t *testing.T) {
	auth, eng := newFixture(t, 1000)
	x := [][]int64{{1, 2}, {3, 4}}
	w := [][]int64{{1, 1}, {2, 2}, {3, 3}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DotKeys(w); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ElementwiseKeys(enc, securemat.ElementwiseSub, x); err != nil {
		t.Fatal(err)
	}
	st := auth.Stats()
	if st.IPKeys != 3 {
		t.Errorf("IPKeys = %d, want 3", st.IPKeys)
	}
	if st.IPKeyScalars != 6 { // 3 rows x 2 scalars
		t.Errorf("IPKeyScalars = %d, want 6", st.IPKeyScalars)
	}
	if st.BOKeys != 4 {
		t.Errorf("BOKeys = %d, want 4", st.BOKeys)
	}
	auth.ResetStats()
	if auth.Stats() != (authority.Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestFunctionHelpers(t *testing.T) {
	if securemat.DotProduct.String() == "" || !securemat.DotProduct.Valid() {
		t.Error("DotProduct helpers broken")
	}
	if securemat.Function(99).Valid() {
		t.Error("invalid function reported valid")
	}
	if _, ok := securemat.DotProduct.BasicOp(); ok {
		t.Error("dot-product should not map to a basic op")
	}
	if op, ok := securemat.ElementwiseDiv.BasicOp(); !ok || op != febo.OpDiv {
		t.Error("div mapping broken")
	}
}

func TestErrorPropagatesFromParallelWorkers(t *testing.T) {
	// Force a decryption failure (value outside solver bound) and verify
	// the parallel path reports it instead of hanging or panicking.
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	tinySolver, err := dlog.NewSolver(group.TestParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: tinySolver})
	if err != nil {
		t.Fatal(err)
	}
	x := [][]int64{{100, 100}, {100, 100}}
	w := [][]int64{{100, 100}, {100, 100}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: 4}); !errors.Is(err, dlog.ErrNotFound) {
		t.Errorf("err = %v, want dlog.ErrNotFound", err)
	}
}
