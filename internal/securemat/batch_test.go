package securemat_test

// Tests for the chunked batched-decryption pipeline: the Montgomery's-trick
// batch inversion and per-worker scratch must be invisible — every
// parallelism setting produces the plaintext result, and errors surface
// with their cell coordinates from any chunk.

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// A matrix large enough for many chunks across several workers, decrypted
// at every parallelism level, must match the plaintext product exactly.
func TestBatchedDecryptMatchesPlaintextAcrossParallelism(t *testing.T) {
	_, eng := newFixture(t, 20*100*100+1)
	rng := rand.New(rand.NewSource(42))
	const inner, cols, wRows = 20, 37, 11 // wRows*cols = 407 cells: many chunks
	x := randMatrix(rng, inner, cols, -9, 9)
	w := randMatrix(rng, wRows, inner, -9, 9)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	want := plainDot(w, x)
	for _, par := range []int{1, 2, 3, 8, -1} {
		z, err := eng.SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if !matEqual(z, want) {
			t.Fatalf("par=%d: batched decrypt diverges from plaintext", par)
		}
	}
}

// Element-wise decrypt through the pipeline: negative values, zeros, and
// results at the solver bound survive the batch inversion.
func TestBatchedElementwiseEdgeValues(t *testing.T) {
	_, eng := newFixture(t, 200)
	x := [][]int64{{-100, 0, 100}, {1, -1, 99}}
	y := [][]int64{{-100, 0, 100}, {-1, 1, 101}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseAdd, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		z, err := eng.SecureElementwise(enc, keys, securemat.ElementwiseAdd, y,
			securemat.ComputeOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		want := [][]int64{{-200, 0, 200}, {0, 0, 200}}
		if !matEqual(z, want) {
			t.Fatalf("par=%d: z = %v, want %v", par, z, want)
		}
	}
}

// A cell whose result overflows the solver bound must fail with that
// cell's coordinates, sequentially and in parallel.
func TestBatchedDecryptReportsFailingCell(t *testing.T) {
	_, eng := newFixture(t, 1)
	tiny, err := dlog.NewSolver(group.TestParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]int64{{1, 1, 1, 9}} // last column overflows bound 3
	w := [][]int64{{1}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		_, err := eng.WithSolver(tiny).SecureDot(enc, keys, w, securemat.ComputeOptions{Parallelism: par})
		if !errors.Is(err, dlog.ErrNotFound) {
			t.Fatalf("par=%d: err = %v, want ErrNotFound", par, err)
		}
		if !strings.Contains(err.Error(), "cell (0,3)") {
			t.Fatalf("par=%d: err %q does not name the failing cell", par, err)
		}
	}
}

// A parts-stage error (division decrypt with y = 0) must carry cell
// coordinates too — it fails before the batch inversion runs.
func TestBatchedDecryptPartsStageError(t *testing.T) {
	_, eng := newFixture(t, 100)
	x := [][]int64{{8, 6}}
	y := [][]int64{{2, 3}}
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := eng.ElementwiseKeys(enc, securemat.ElementwiseDiv, y)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]int64{{2, 0}} // zero divisor at decrypt time
	if _, err := eng.SecureElementwise(enc, keys, securemat.ElementwiseDiv, bad,
		securemat.ComputeOptions{Parallelism: 1}); err == nil || !strings.Contains(err.Error(), "cell (0,1)") {
		t.Fatalf("err = %v, want parts error naming cell (0,1)", err)
	}
}
