package securemat_test

import (
	"fmt"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

// ExampleEngine walks Algorithm 1 end to end through the session API: a
// client-side engine encrypts a matrix (no solver — clients never
// decrypt), the server-side engine derives the dot-product keys from the
// authority and evaluates W·X over ciphertexts only.
func ExampleEngine() {
	params := group.TestParams()
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		panic(err)
	}

	// The client session: encrypt X column- and element-wise.
	client, err := securemat.NewEngine(auth, securemat.EngineOptions{})
	if err != nil {
		panic(err)
	}
	x := [][]int64{
		{1, 2, 3},
		{4, 5, 6},
	}
	encX, err := client.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		panic(err)
	}

	// The server session: a bounded discrete-log solver sized for the
	// largest possible result, and the authority connection for keys.
	solver, err := dlog.NewSolver(params, 100)
	if err != nil {
		panic(err)
	}
	server, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		panic(err)
	}
	w := [][]int64{
		{1, 1},
		{2, -1},
	}
	// Dot derives (and caches) the keys for W, then recovers W·X from
	// the ciphertexts; the server never sees X.
	z, err := server.Dot(encX, w, securemat.ComputeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(z)
	// Output: [[5 7 9] [-2 -1 0]]
}
