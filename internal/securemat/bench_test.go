package securemat_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cryptonn/internal/securemat"
)

// Algorithm 1 stage costs at the secure-matrix level; the seq/par pair is
// the paper's "P" comparison, and the per-stage split mirrors the Fig. 5
// panels.

func BenchmarkSecureDotStage(b *testing.B) {
	const (
		length = 50
		count  = 40
	)
	_, eng := newFixture(b, int64(length)*100+1)
	rng := rand.New(rand.NewSource(5))
	x := randMatrix(rng, length, count, 1, 10)
	w := randMatrix(rng, 1, length, 1, 10)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		b.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("keyderive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.DotKeys(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("compute/par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureDot(enc, keys, w,
					securemat.ComputeOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchedDecrypt measures the chunked batched-decryption pipeline
// (per-worker scratch + Montgomery's-trick denominator inversion) over a
// full secure matrix product, across worker counts — the paper's parallel
// "P" curves at the securemat level.
func BenchmarkBatchedDecrypt(b *testing.B) {
	const (
		inner = 32
		cols  = 32
		wRows = 4
	)
	_, eng := newFixture(b, int64(inner)*100+1)
	rng := rand.New(rand.NewSource(9))
	x := randMatrix(rng, inner, cols, -9, 9)
	w := randMatrix(rng, wRows, inner, -9, 9)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		b.Fatal(err)
	}
	keys, err := eng.DotKeys(w)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureDot(enc, keys, w,
					securemat.ComputeOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSecureElementwiseStage(b *testing.B) {
	const size = 100
	_, eng := newFixture(b, 101*101)
	rng := rand.New(rand.NewSource(6))
	x := randMatrix(rng, 1, size, -100, 100)
	y := randMatrix(rng, 1, size, -100, 100)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []securemat.Function{securemat.ElementwiseAdd, securemat.ElementwiseMul} {
		keys, err := eng.ElementwiseKeys(enc, f, y)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureElementwise(enc, keys, f, y,
					securemat.ComputeOptions{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSecureElementwise measures the full in-domain element-wise
// pipeline at η-scale (a 28×28 matrix, the paper's MNIST feature count)
// across worker counts — the counterpart of BenchmarkBatchedDecrypt for
// the FEBO path. allocs/op is the headline: the Montgomery pipeline keeps
// per-cell numerators out of big.Int entirely.
func BenchmarkSecureElementwise(b *testing.B) {
	const (
		rows = 28
		cols = 28
	)
	_, eng := newFixture(b, 101*101)
	rng := rand.New(rand.NewSource(23))
	x := randMatrix(rng, rows, cols, -100, 100)
	y := randMatrix(rng, rows, cols, -100, 100)
	enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []securemat.Function{securemat.ElementwiseAdd, securemat.ElementwiseMul} {
		keys, err := eng.ElementwiseKeys(enc, f, y)
		if err != nil {
			b.Fatal(err)
		}
		for _, par := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/par=%d", f, par), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := eng.SecureElementwise(enc, keys, f, y,
						securemat.ComputeOptions{Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineDotKeyCache pins the session key cache: a hit must cost
// hashing plus one comparison, orders of magnitude under the derivation an
// uncached engine pays every call.
func BenchmarkEngineDotKeyCache(b *testing.B) {
	const rows, inner = 8, 64
	auth, _ := newFixture(b, 1)
	rng := rand.New(rand.NewSource(29))
	w := randMatrix(rng, rows, inner, -9, 9)
	b.Run("hit", func(b *testing.B) {
		eng, err := securemat.NewEngine(auth, securemat.EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.DotKeys(w); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.DotKeys(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		eng, err := securemat.NewEngine(auth, securemat.EngineOptions{DotKeyCache: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.DotKeys(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncryptParallel measures the chunked parallel client-side
// pre-processing (columns + dual rows + elements) across worker counts —
// the encryption-side counterpart of BenchmarkBatchedDecrypt's "P" curves.
func BenchmarkEncryptParallel(b *testing.B) {
	const (
		rows = 32
		cols = 32
	)
	_, eng := newFixture(b, int64(rows)*100+1)
	rng := rand.New(rand.NewSource(17))
	x := randMatrix(rng, rows, cols, -9, 9)
	// Warm the key-service tables so every variant measures steady state.
	if _, err := eng.Encrypt(x, securemat.EncryptOptions{WithRows: true}); err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Encrypt(x, securemat.EncryptOptions{
					WithRows:    true,
					Parallelism: par,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
