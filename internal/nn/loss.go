package nn

import (
	"errors"
	"fmt"
	"math"

	"cryptonn/internal/tensor"
)

// ErrLoss reports invalid loss inputs.
var ErrLoss = errors.New("nn: invalid loss input")

// Loss evaluates a training criterion on (classes × batch) predictions and
// targets, returning the scalar loss and the gradient with respect to the
// layer stack's output (the 1/batch factor is included here).
type Loss interface {
	// Name identifies the loss.
	Name() string
	// Forward returns (loss, dL/dOutput).
	Forward(pred, target *tensor.Dense) (float64, *tensor.Dense, error)
}

// Softmax computes column-wise softmax probabilities with the max-shift
// stabilisation.
func Softmax(logits *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(logits.Rows, logits.Cols)
	for j := 0; j < logits.Cols; j++ {
		maxV := math.Inf(-1)
		for i := 0; i < logits.Rows; i++ {
			if v := logits.At(i, j); v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i := 0; i < logits.Rows; i++ {
			e := math.Exp(logits.At(i, j) - maxV)
			out.Set(i, j, e)
			sum += e
		}
		for i := 0; i < logits.Rows; i++ {
			out.Set(i, j, out.At(i, j)/sum)
		}
	}
	return out
}

// SoftmaxCrossEntropy is the paper's CryptoCNN output stage (§III-E2):
// softmax p_i = e^{a_i}/Σe^{a_k} with cross-entropy L = −Σ y_i log p_i.
// The combined gradient is (P − Y)/batch — exactly the element-wise
// subtraction that the secure back-propagation step computes over the
// encrypted label.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-cross-entropy" }

// Forward implements Loss; target must be one-hot (or a distribution).
func (SoftmaxCrossEntropy) Forward(pred, target *tensor.Dense) (float64, *tensor.Dense, error) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		return 0, nil, fmt.Errorf("%w: pred %dx%d target %dx%d", ErrLoss, pred.Rows, pred.Cols, target.Rows, target.Cols)
	}
	batch := float64(pred.Cols)
	p := Softmax(pred)
	var loss float64
	for j := 0; j < p.Cols; j++ {
		for i := 0; i < p.Rows; i++ {
			if y := target.At(i, j); y != 0 {
				loss -= y * math.Log(math.Max(p.At(i, j), 1e-300))
			}
		}
	}
	grad, err := tensor.Sub(p, target)
	if err != nil {
		return 0, nil, err
	}
	return loss / batch, grad.Scale(1 / batch), nil
}

// MSE is the half squared error E = 1/(2m) Σ (ŷ − y)² of the paper's
// binary-classification walkthrough (§III-D); its gradient (Ŷ − Y)/m is
// again the secure element-wise subtraction.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Forward implements Loss.
func (MSE) Forward(pred, target *tensor.Dense) (float64, *tensor.Dense, error) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		return 0, nil, fmt.Errorf("%w: pred %dx%d target %dx%d", ErrLoss, pred.Rows, pred.Cols, target.Rows, target.Cols)
	}
	batch := float64(pred.Cols)
	diff, err := tensor.Sub(pred, target)
	if err != nil {
		return 0, nil, err
	}
	var loss float64
	for _, v := range diff.Data {
		loss += v * v
	}
	return loss / (2 * batch), diff.Scale(1 / batch), nil
}

// Interface compliance checks.
var (
	_ Loss = SoftmaxCrossEntropy{}
	_ Loss = MSE{}
)
