package nn

// Model checkpointing: Save serializes a model's architecture and
// parameters to a gob stream; Load reconstructs it. The trained CryptoNN
// model is plaintext on the server (the paper's design), so persisting it
// is ordinary serialization — no key material is involved.
//
// The format is a versioned header plus one spec per layer. Layers are
// rebuilt through their constructors on load, then the saved weights are
// copied in, so wiring validation runs again and function-valued fields
// (activations) never need to be encoded.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// layerSpec is the serialized form of one layer.
type layerSpec struct {
	// Kind is one of "dense", "conv", "avgpool", "sigmoid", "tanh",
	// "relu".
	Kind string
	// Dense / conv geometry (meaningful per kind).
	In, Out                 int
	InC, InH, InW           int
	Filters, K, Stride, Pad int
	// W and B are the parameters, row-major (dense and conv only).
	W, B []float64
}

// checkpoint is the serialized form of a model.
type checkpoint struct {
	Version   int
	InputSize int
	Loss      string
	Layers    []layerSpec
}

// Save writes the model to w. Gradients and forward caches are not
// saved — a loaded model starts cold.
func Save(w io.Writer, m *Model) error {
	if m == nil || len(m.Layers) == 0 {
		return errors.New("nn: cannot save empty model")
	}
	inputSize, err := modelInputSize(m)
	if err != nil {
		return err
	}
	cp := checkpoint{
		Version:   checkpointVersion,
		InputSize: inputSize,
		Loss:      m.Loss.Name(),
	}
	for _, l := range m.Layers {
		spec, err := specFor(l)
		if err != nil {
			return err
		}
		cp.Layers = append(cp.Layers, spec)
	}
	if err := gob.NewEncoder(w).Encode(&cp); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("nn: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	var loss Loss
	switch cp.Loss {
	case SoftmaxCrossEntropy{}.Name():
		loss = SoftmaxCrossEntropy{}
	case MSE{}.Name():
		loss = MSE{}
	default:
		return nil, fmt.Errorf("nn: unknown loss %q in checkpoint", cp.Loss)
	}
	layers := make([]Layer, 0, len(cp.Layers))
	for i, spec := range cp.Layers {
		l, err := layerFrom(spec)
		if err != nil {
			return nil, fmt.Errorf("nn: checkpoint layer %d: %w", i, err)
		}
		layers = append(layers, l)
	}
	return NewModel(cp.InputSize, loss, layers...)
}

// modelInputSize recovers the model's input feature count from its first
// parameterized layer.
func modelInputSize(m *Model) (int, error) {
	switch l := m.Layers[0].(type) {
	case *DenseLayer:
		return l.In, nil
	case *ConvLayer:
		return l.InSize(), nil
	case *AvgPoolLayer:
		return l.InSize(), nil
	default:
		return 0, fmt.Errorf("nn: cannot infer input size from first layer %s", m.Layers[0].Name())
	}
}

func specFor(l Layer) (layerSpec, error) {
	switch v := l.(type) {
	case *DenseLayer:
		return layerSpec{
			Kind: "dense", In: v.In, Out: v.Out,
			W: append([]float64(nil), v.W.Data...),
			B: append([]float64(nil), v.B.Data...),
		}, nil
	case *ConvLayer:
		return layerSpec{
			Kind: "conv",
			InC:  v.InC, InH: v.InH, InW: v.InW,
			Filters: v.Filters, K: v.K, Stride: v.Stride, Pad: v.Pad,
			W: append([]float64(nil), v.W.Data...),
			B: append([]float64(nil), v.B.Data...),
		}, nil
	case *AvgPoolLayer:
		return layerSpec{
			Kind: "avgpool",
			InC:  v.C, InH: v.H, InW: v.W,
			K: v.K, Stride: v.Stride,
		}, nil
	case *Activation:
		switch v.name {
		case "sigmoid", "tanh", "relu":
			return layerSpec{Kind: v.name}, nil
		default:
			return layerSpec{}, fmt.Errorf("nn: cannot checkpoint activation %q", v.name)
		}
	default:
		return layerSpec{}, fmt.Errorf("nn: cannot checkpoint layer %s", l.Name())
	}
}

func layerFrom(spec layerSpec) (Layer, error) {
	// Fresh layers are built with a throwaway deterministic rng; the
	// saved weights overwrite the initialisation.
	rng := rand.New(rand.NewSource(1))
	switch spec.Kind {
	case "dense":
		l := NewDense(spec.In, spec.Out, rng)
		if err := copyParams(l.W.Data, spec.W, "weights"); err != nil {
			return nil, err
		}
		if err := copyParams(l.B.Data, spec.B, "bias"); err != nil {
			return nil, err
		}
		return l, nil
	case "conv":
		l, err := NewConv(spec.InC, spec.InH, spec.InW, spec.Filters, spec.K, spec.Stride, spec.Pad, rng)
		if err != nil {
			return nil, err
		}
		if err := copyParams(l.W.Data, spec.W, "weights"); err != nil {
			return nil, err
		}
		if err := copyParams(l.B.Data, spec.B, "bias"); err != nil {
			return nil, err
		}
		return l, nil
	case "avgpool":
		return NewAvgPool(spec.InC, spec.InH, spec.InW, spec.K, spec.Stride)
	case "sigmoid":
		return NewSigmoid(), nil
	case "tanh":
		return NewTanh(), nil
	case "relu":
		return NewReLU(), nil
	default:
		return nil, fmt.Errorf("nn: unknown layer kind %q", spec.Kind)
	}
}

func copyParams(dst, src []float64, what string) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: checkpoint %s length %d, want %d", what, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}
