package nn

import (
	"errors"
	"fmt"
	"strings"

	"cryptonn/internal/tensor"
)

// Model is an ordered layer stack with a loss criterion.
type Model struct {
	Layers []Layer
	Loss   Loss
}

// NewModel validates layer wiring for the given input feature count and
// returns the assembled model.
func NewModel(inputSize int, loss Loss, layers ...Layer) (*Model, error) {
	if loss == nil {
		return nil, errors.New("nn: nil loss")
	}
	if len(layers) == 0 {
		return nil, errors.New("nn: empty layer stack")
	}
	size := inputSize
	for _, l := range layers {
		next, err := l.OutputSize(size)
		if err != nil {
			return nil, fmt.Errorf("nn: wiring: %w", err)
		}
		size = next
	}
	return &Model{Layers: layers, Loss: loss}, nil
}

// Forward runs the full feed-forward pass.
func (m *Model) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	cur := x
	for _, l := range m.Layers {
		next, err := l.Forward(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// ForwardFrom runs the feed-forward pass starting at layer index from,
// consuming an activation produced upstream. The CryptoNN trainer uses it
// to continue after the secure feed-forward step replaced layer 0.
func (m *Model) ForwardFrom(from int, x *tensor.Dense) (*tensor.Dense, error) {
	if from < 0 || from > len(m.Layers) {
		return nil, fmt.Errorf("nn: layer index %d out of range", from)
	}
	cur := x
	for _, l := range m.Layers[from:] {
		next, err := l.Forward(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Backward propagates an output gradient through every layer, returning
// the input gradient.
func (m *Model) Backward(grad *tensor.Dense) (*tensor.Dense, error) {
	return m.BackwardTo(0, grad)
}

// BackwardTo propagates the gradient down to (and including) layer index
// to, returning d(loss)/d(activation entering layer to). The CryptoNN
// trainer stops at layer 1 and handles layer 0's gradient securely.
func (m *Model) BackwardTo(to int, grad *tensor.Dense) (*tensor.Dense, error) {
	if to < 0 || to > len(m.Layers) {
		return nil, fmt.Errorf("nn: layer index %d out of range", to)
	}
	cur := grad
	for i := len(m.Layers) - 1; i >= to; i-- {
		next, err := m.Layers[i].Backward(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Params collects every trainable parameter in layer order.
func (m *Model) Params() []Param {
	var out []Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// gradLayer is implemented by layers owning parameter state.
type gradLayer interface {
	ZeroGrad()
}

// ZeroGrad clears accumulated gradients on every parameterised layer.
func (m *Model) ZeroGrad() {
	for _, l := range m.Layers {
		if g, ok := l.(gradLayer); ok {
			g.ZeroGrad()
		}
	}
}

// step applies the optimizer to every parameter.
func (m *Model) step(opt Optimizer) error {
	return opt.Step(m.Params())
}

// TrainBatch runs one forward/backward/update cycle on a batch and returns
// the loss.
func (m *Model) TrainBatch(x, y *tensor.Dense, opt Optimizer) (float64, error) {
	m.ZeroGrad()
	out, err := m.Forward(x)
	if err != nil {
		return 0, err
	}
	loss, grad, err := m.Loss.Forward(out, y)
	if err != nil {
		return 0, err
	}
	if _, err := m.Backward(grad); err != nil {
		return 0, err
	}
	if err := m.step(opt); err != nil {
		return 0, err
	}
	return loss, nil
}

// ApplyStep exposes the optimizer application for trainers that drive the
// forward/backward passes themselves (the CryptoNN framework).
func (m *Model) ApplyStep(opt Optimizer) error { return m.step(opt) }

// Predict returns the arg-max class per column of the model output.
func (m *Model) Predict(x *tensor.Dense) ([]int, error) {
	out, err := m.Forward(x)
	if err != nil {
		return nil, err
	}
	preds := make([]int, out.Cols)
	for j := 0; j < out.Cols; j++ {
		preds[j] = out.ArgMaxCol(j)
	}
	return preds, nil
}

// Accuracy computes arg-max accuracy against one-hot targets.
func (m *Model) Accuracy(x, y *tensor.Dense) (float64, error) {
	preds, err := m.Predict(x)
	if err != nil {
		return 0, err
	}
	if y.Cols != len(preds) {
		return 0, fmt.Errorf("%w: %d predictions, %d targets", ErrShape, len(preds), y.Cols)
	}
	correct := 0
	for j, p := range preds {
		if y.ArgMaxCol(j) == p {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// Summary returns a one-line-per-layer description.
func (m *Model) Summary() string {
	var b strings.Builder
	for i, l := range m.Layers {
		fmt.Fprintf(&b, "%2d: %s\n", i, l.Name())
	}
	fmt.Fprintf(&b, "loss: %s", m.Loss.Name())
	return b.String()
}

// CountParams returns the total number of scalar parameters.
func (m *Model) CountParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Value.Data)
	}
	return n
}
