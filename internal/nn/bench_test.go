package nn

import (
	"math/rand"
	"testing"

	"cryptonn/internal/tensor"
)

// Plaintext model costs — the baseline column of Table III. Comparing
// BenchmarkMLPTrainBatch here with the root BenchmarkFig6SecureStep gives
// the per-batch crypto overhead factor directly.

func benchBatch(in, classes, n int, seed int64) (*tensor.Dense, *tensor.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewDense(in, n)
	x.RandInit(rng, 1)
	y := tensor.NewDense(classes, n)
	for j := 0; j < n; j++ {
		y.Set(j%classes, j, 1)
	}
	return x, y
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewMLP(784, 10, []int{32}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := benchBatch(784, 10, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewMLP(784, 10, []int{32}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x, y := benchBatch(784, 10, 64, 2)
	opt, err := NewSGD(0.3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainBatch(x, y, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeNet5Forward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewLeNet5(rng)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := benchBatch(MNISTInputSize, MNISTClasses, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeNet5TrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewLeNet5(rng)
	if err != nil {
		b.Fatal(err)
	}
	x, y := benchBatch(MNISTInputSize, MNISTClasses, 8, 2)
	opt, err := NewSGD(0.1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainBatch(x, y, opt); err != nil {
			b.Fatal(err)
		}
	}
}
