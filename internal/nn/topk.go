package nn

import (
	"fmt"
	"sort"

	"cryptonn/internal/tensor"
)

// Top-k prediction head for extreme multi-label models: per sample only
// the k highest-scoring labels matter, both at serving time (the secure
// pipeline solves just those k discrete logs — securemat.DotTopK) and at
// evaluation time (precision@k is the standard XMC metric). These are the
// plaintext counterparts the secure path is pinned against.

// TopKCols returns, for each column (sample) of out, the indices of its k
// largest entries in descending value order, ties broken by lower index —
// the same contract as dlog.TopK, so plaintext and secure heads compare
// element-for-element. k is clamped to the number of rows.
func TopKCols(out *tensor.Dense, k int) [][]int {
	if k > out.Rows {
		k = out.Rows
	}
	top := make([][]int, out.Cols)
	idx := make([]int, out.Rows)
	for j := 0; j < out.Cols; j++ {
		for i := range idx {
			idx[i] = i
		}
		col := j
		sort.SliceStable(idx, func(a, b int) bool {
			return out.At(idx[a], col) > out.At(idx[b], col)
		})
		top[j] = append([]int(nil), idx[:k]...)
	}
	return top
}

// PredictTopK runs the forward pass and returns the top-k label indices
// per sample — the multi-label generalization of Predict (which is the
// k = 1 special case).
func (m *Model) PredictTopK(x *tensor.Dense, k int) ([][]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("nn: top-k count must be positive, got %d", k)
	}
	out, err := m.Forward(x)
	if err != nil {
		return nil, err
	}
	return TopKCols(out, k), nil
}

// PrecisionAtK computes P@k against multi-hot targets y (y[i][j] > 0 ⇔
// label i is relevant for sample j): the fraction of the k predicted
// labels per sample that are relevant, averaged over samples — the
// standard extreme multi-label classification metric.
func (m *Model) PrecisionAtK(x, y *tensor.Dense, k int) (float64, error) {
	preds, err := m.PredictTopK(x, k)
	if err != nil {
		return 0, err
	}
	if y.Cols != len(preds) {
		return 0, fmt.Errorf("%w: %d predictions, %d targets", ErrShape, len(preds), y.Cols)
	}
	total := 0.0
	for j, top := range preds {
		hit := 0
		for _, i := range top {
			if i < y.Rows && y.At(i, j) > 0 {
				hit++
			}
		}
		total += float64(hit) / float64(len(top))
	}
	return total / float64(len(preds)), nil
}
