package nn

import (
	"errors"
	"fmt"

	"cryptonn/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter; gradients are consumed
	// as-is (callers zero them between batches).
	Step(params []Param) error
}

// SGD is stochastic gradient descent with optional classical momentum —
// the paper trains with plain SGD (§IV-B3).
type SGD struct {
	// LR is the learning rate; must be positive.
	LR float64
	// Momentum in [0, 1); zero selects plain SGD.
	Momentum float64

	velocity map[*tensor.Dense]*tensor.Dense
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive, got %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum must be in [0,1), got %v", momentum)
	}
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Dense]*tensor.Dense)}, nil
}

// Step implements Optimizer: v ← μv − η∇, θ ← θ + v (or θ ← θ − η∇ when
// μ = 0).
func (s *SGD) Step(params []Param) error {
	for _, p := range params {
		if p.Value == nil || p.Grad == nil {
			return errors.New("nn: parameter with nil value or gradient")
		}
		if s.Momentum == 0 {
			if err := p.Value.AxpyInPlace(-s.LR, p.Grad); err != nil {
				return fmt.Errorf("nn: updating %s: %w", p.Name, err)
			}
			continue
		}
		v, ok := s.velocity[p.Value]
		if !ok {
			v = tensor.NewDense(p.Value.Rows, p.Value.Cols)
			s.velocity[p.Value] = v
		}
		for i := range v.Data {
			v.Data[i] = s.Momentum*v.Data[i] - s.LR*p.Grad.Data[i]
			p.Value.Data[i] += v.Data[i]
		}
	}
	return nil
}

// Interface compliance check.
var _ Optimizer = (*SGD)(nil)
