package nn

import (
	"fmt"
	"math"
	"math/rand"

	"cryptonn/internal/tensor"
)

// ConvLayer is a 2-D convolutional layer. It consumes (C·H·W × batch)
// matrices whose columns are flattened input volumes, applies F filters of
// size C×K×K with the given stride and padding, and emits
// (F·outH·outW × batch) matrices.
//
// The implementation lowers convolution to matrix multiplication via
// im2col — the same window extraction that the secure convolution scheme
// (Algorithm 3) encrypts, which is what lets internal/core swap this
// layer's forward pass for the secure one without touching anything else.
type ConvLayer struct {
	InC, InH, InW int
	Filters       int
	K             int
	Stride, Pad   int
	OutH, OutW    int

	W     *tensor.Dense // Filters × InC*K*K
	B     *tensor.Dense // Filters × 1
	GradW *tensor.Dense
	GradB *tensor.Dense

	cols []*tensor.Dense // cached im2col per sample
}

// NewConv constructs a convolutional layer; geometry must tile exactly.
func NewConv(inC, inH, inW, filters, k, stride, pad int, rng *rand.Rand) (*ConvLayer, error) {
	outH, err := tensor.ConvOutSize(inH, k, stride, pad)
	if err != nil {
		return nil, fmt.Errorf("nn: conv height: %w", err)
	}
	outW, err := tensor.ConvOutSize(inW, k, stride, pad)
	if err != nil {
		return nil, fmt.Errorf("nn: conv width: %w", err)
	}
	l := &ConvLayer{
		InC: inC, InH: inH, InW: inW,
		Filters: filters, K: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		W:     tensor.NewDense(filters, inC*k*k),
		B:     tensor.NewDense(filters, 1),
		GradW: tensor.NewDense(filters, inC*k*k),
		GradB: tensor.NewDense(filters, 1),
	}
	fanIn := inC * k * k
	fanOut := filters * k * k
	l.W.RandInit(rng, math.Sqrt(6.0/float64(fanIn+fanOut)))
	return l, nil
}

// Name implements Layer.
func (l *ConvLayer) Name() string {
	return fmt.Sprintf("conv(%dx%dx%d,%df,k%d,s%d,p%d)", l.InC, l.InH, l.InW, l.Filters, l.K, l.Stride, l.Pad)
}

// InSize returns the flattened input feature count.
func (l *ConvLayer) InSize() int { return l.InC * l.InH * l.InW }

// OutSize returns the flattened output feature count.
func (l *ConvLayer) OutSize() int { return l.Filters * l.OutH * l.OutW }

// OutputSize implements Layer.
func (l *ConvLayer) OutputSize(inputSize int) (int, error) {
	if inputSize != l.InSize() {
		return 0, fmt.Errorf("%w: %s got input size %d, want %d", ErrShape, l.Name(), inputSize, l.InSize())
	}
	return l.OutSize(), nil
}

// Forward implements Layer.
func (l *ConvLayer) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if x.Rows != l.InSize() {
		return nil, fmt.Errorf("%w: %s got %d input features, want %d", ErrShape, l.Name(), x.Rows, l.InSize())
	}
	batch := x.Cols
	out := tensor.NewDense(l.OutSize(), batch)
	l.cols = make([]*tensor.Dense, batch)
	for s := 0; s < batch; s++ {
		vol, err := tensor.VolumeFromFlat(x.Col(s), l.InC, l.InH, l.InW)
		if err != nil {
			return nil, fmt.Errorf("nn: %s sample %d: %w", l.Name(), s, err)
		}
		col, err := tensor.Im2Col(vol, l.K, l.K, l.Stride, l.Pad)
		if err != nil {
			return nil, fmt.Errorf("nn: %s im2col: %w", l.Name(), err)
		}
		l.cols[s] = col
		z, err := tensor.MatMul(l.W, col) // Filters × outH*outW
		if err != nil {
			return nil, fmt.Errorf("nn: %s matmul: %w", l.Name(), err)
		}
		for f := 0; f < l.Filters; f++ {
			bias := l.B.Data[f]
			rowOff := f * z.Cols
			for c := 0; c < z.Cols; c++ {
				out.Set(f*z.Cols+c, s, z.Data[rowOff+c]+bias)
			}
		}
	}
	return out, nil
}

// Backward implements Layer: per sample, dW += dZ·colᵀ, db += Σ dZ,
// dX = col2im(Wᵀ·dZ).
func (l *ConvLayer) Backward(grad *tensor.Dense) (*tensor.Dense, error) {
	if l.cols == nil {
		return nil, fmt.Errorf("nn: %s backward before forward", l.Name())
	}
	batch := len(l.cols)
	if grad.Rows != l.OutSize() || grad.Cols != batch {
		return nil, fmt.Errorf("%w: %s got gradient %dx%d", ErrShape, l.Name(), grad.Rows, grad.Cols)
	}
	spatial := l.OutH * l.OutW
	dX := tensor.NewDense(l.InSize(), batch)
	for s := 0; s < batch; s++ {
		// Reshape this sample's gradient to Filters × spatial.
		dZ := tensor.NewDense(l.Filters, spatial)
		for f := 0; f < l.Filters; f++ {
			for c := 0; c < spatial; c++ {
				dZ.Data[f*spatial+c] = grad.At(f*spatial+c, s)
			}
		}
		dW, err := tensor.MatMulT2(dZ, l.cols[s])
		if err != nil {
			return nil, fmt.Errorf("nn: %s dW: %w", l.Name(), err)
		}
		if err := l.GradW.AddInPlace(dW); err != nil {
			return nil, err
		}
		for f := 0; f < l.Filters; f++ {
			var acc float64
			for c := 0; c < spatial; c++ {
				acc += dZ.Data[f*spatial+c]
			}
			l.GradB.Data[f] += acc
		}
		dCol, err := tensor.MatMulT1(l.W, dZ)
		if err != nil {
			return nil, fmt.Errorf("nn: %s dCol: %w", l.Name(), err)
		}
		dVol, err := tensor.Col2Im(dCol, l.InC, l.InH, l.InW, l.K, l.K, l.Stride, l.Pad)
		if err != nil {
			return nil, fmt.Errorf("nn: %s col2im: %w", l.Name(), err)
		}
		for i, v := range dVol.Data {
			dX.Set(i, s, v)
		}
	}
	return dX, nil
}

// Params implements Layer.
func (l *ConvLayer) Params() []Param {
	return []Param{
		{Name: l.Name() + ".W", Value: l.W, Grad: l.GradW},
		{Name: l.Name() + ".b", Value: l.B, Grad: l.GradB},
	}
}

// ZeroGrad clears accumulated gradients.
func (l *ConvLayer) ZeroGrad() {
	l.GradW.Zero()
	l.GradB.Zero()
}

// AvgPoolLayer is an average-pooling layer over (C·H·W × batch) matrices.
type AvgPoolLayer struct {
	C, H, W    int
	K, Stride  int
	OutH, OutW int
	batch      int
}

// NewAvgPool constructs an average-pooling layer; geometry must tile.
func NewAvgPool(c, h, w, k, stride int) (*AvgPoolLayer, error) {
	outH, err := tensor.ConvOutSize(h, k, stride, 0)
	if err != nil {
		return nil, fmt.Errorf("nn: pool height: %w", err)
	}
	outW, err := tensor.ConvOutSize(w, k, stride, 0)
	if err != nil {
		return nil, fmt.Errorf("nn: pool width: %w", err)
	}
	return &AvgPoolLayer{C: c, H: h, W: w, K: k, Stride: stride, OutH: outH, OutW: outW}, nil
}

// Name implements Layer.
func (l *AvgPoolLayer) Name() string {
	return fmt.Sprintf("avgpool(%dx%dx%d,k%d,s%d)", l.C, l.H, l.W, l.K, l.Stride)
}

// InSize returns the flattened input feature count.
func (l *AvgPoolLayer) InSize() int { return l.C * l.H * l.W }

// OutSize returns the flattened output feature count.
func (l *AvgPoolLayer) OutSize() int { return l.C * l.OutH * l.OutW }

// OutputSize implements Layer.
func (l *AvgPoolLayer) OutputSize(inputSize int) (int, error) {
	if inputSize != l.InSize() {
		return 0, fmt.Errorf("%w: %s got input size %d, want %d", ErrShape, l.Name(), inputSize, l.InSize())
	}
	return l.OutSize(), nil
}

// Forward implements Layer.
func (l *AvgPoolLayer) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if x.Rows != l.InSize() {
		return nil, fmt.Errorf("%w: %s got %d input features, want %d", ErrShape, l.Name(), x.Rows, l.InSize())
	}
	l.batch = x.Cols
	out := tensor.NewDense(l.OutSize(), x.Cols)
	for s := 0; s < x.Cols; s++ {
		vol, err := tensor.VolumeFromFlat(x.Col(s), l.C, l.H, l.W)
		if err != nil {
			return nil, err
		}
		pooled, err := tensor.AvgPool(vol, l.K, l.Stride)
		if err != nil {
			return nil, fmt.Errorf("nn: %s: %w", l.Name(), err)
		}
		for i, v := range pooled.Data {
			out.Set(i, s, v)
		}
	}
	return out, nil
}

// Backward implements Layer.
func (l *AvgPoolLayer) Backward(grad *tensor.Dense) (*tensor.Dense, error) {
	if grad.Rows != l.OutSize() || grad.Cols != l.batch {
		return nil, fmt.Errorf("%w: %s got gradient %dx%d", ErrShape, l.Name(), grad.Rows, grad.Cols)
	}
	out := tensor.NewDense(l.InSize(), grad.Cols)
	for s := 0; s < grad.Cols; s++ {
		gvol, err := tensor.VolumeFromFlat(grad.Col(s), l.C, l.OutH, l.OutW)
		if err != nil {
			return nil, err
		}
		back, err := tensor.AvgPoolBackward(gvol, l.H, l.W, l.K, l.Stride)
		if err != nil {
			return nil, fmt.Errorf("nn: %s backward: %w", l.Name(), err)
		}
		for i, v := range back.Data {
			out.Set(i, s, v)
		}
	}
	return out, nil
}

// Params implements Layer (none).
func (l *AvgPoolLayer) Params() []Param { return nil }

// Interface compliance checks.
var (
	_ Layer = (*ConvLayer)(nil)
	_ Layer = (*AvgPoolLayer)(nil)
)
