package nn

import (
	"fmt"
	"math/rand"
)

// LeNet-5 geometry constants (LeCun et al. 1998, as instantiated by the
// paper's CryptoCNN case study §III-E: C1 conv → S2 avg-pool → C3 conv →
// S4 avg-pool → C5 fully connected → F6 → 10-way softmax output).
const (
	// MNISTImageSide is the input image side length.
	MNISTImageSide = 28
	// MNISTClasses is the number of output classes.
	MNISTClasses = 10
	// MNISTInputSize is the flattened input feature count.
	MNISTInputSize = MNISTImageSide * MNISTImageSide
)

// NewLeNet5 builds the classic LeNet-5 convolutional network for 1×28×28
// inputs with tanh activations, average pooling and a softmax
// cross-entropy head — the paper's baseline model (Table III, Fig. 6).
func NewLeNet5(rng *rand.Rand) (*Model, error) {
	c1, err := NewConv(1, 28, 28, 6, 5, 1, 2, rng) // 6×28×28
	if err != nil {
		return nil, fmt.Errorf("nn: lenet C1: %w", err)
	}
	s2, err := NewAvgPool(6, 28, 28, 2, 2) // 6×14×14
	if err != nil {
		return nil, fmt.Errorf("nn: lenet S2: %w", err)
	}
	c3, err := NewConv(6, 14, 14, 16, 5, 1, 0, rng) // 16×10×10
	if err != nil {
		return nil, fmt.Errorf("nn: lenet C3: %w", err)
	}
	s4, err := NewAvgPool(16, 10, 10, 2, 2) // 16×5×5
	if err != nil {
		return nil, fmt.Errorf("nn: lenet S4: %w", err)
	}
	return NewModel(MNISTInputSize, SoftmaxCrossEntropy{},
		c1, NewTanh(),
		s2,
		c3, NewTanh(),
		s4,
		NewDense(16*5*5, 120, rng), NewTanh(), // C5
		NewDense(120, 84, rng), NewTanh(), // F6
		NewDense(84, MNISTClasses, rng), // output
	)
}

// NewLeNetSmall builds a reduced LeNet-style network for fast tests and
// scaled-down experiments: one conv block then two dense layers, on the
// same 28×28 input geometry.
func NewLeNetSmall(rng *rand.Rand) (*Model, error) {
	c1, err := NewConv(1, 28, 28, 4, 5, 1, 2, rng) // 4×28×28
	if err != nil {
		return nil, fmt.Errorf("nn: small C1: %w", err)
	}
	s2, err := NewAvgPool(4, 28, 28, 2, 2) // 4×14×14
	if err != nil {
		return nil, fmt.Errorf("nn: small S2: %w", err)
	}
	return NewModel(MNISTInputSize, SoftmaxCrossEntropy{},
		c1, NewTanh(),
		s2,
		NewDense(4*14*14, 32, rng), NewTanh(),
		NewDense(32, MNISTClasses, rng),
	)
}

// NewConvNetSmall builds a compact convolutional network for side×side
// single-channel inputs: one 3×3 conv block (stride 1, pad 1, so the
// spatial size is preserved), 2× average pooling, then two dense layers.
// It is the CryptoCNN test architecture for down-scaled experiment runs
// on small machines; NewLeNetSmall keeps the paper's 28×28 geometry.
func NewConvNetSmall(side, filters int, rng *rand.Rand) (*Model, error) {
	if side < 4 || side%2 != 0 {
		return nil, fmt.Errorf("nn: conv-net side %d must be even and ≥ 4", side)
	}
	if filters < 1 {
		return nil, fmt.Errorf("nn: conv-net needs ≥ 1 filter, got %d", filters)
	}
	c1, err := NewConv(1, side, side, filters, 3, 1, 1, rng) // filters×side×side
	if err != nil {
		return nil, fmt.Errorf("nn: conv-net C1: %w", err)
	}
	s2, err := NewAvgPool(filters, side, side, 2, 2) // filters×side/2×side/2
	if err != nil {
		return nil, fmt.Errorf("nn: conv-net S2: %w", err)
	}
	half := side / 2
	return NewModel(side*side, SoftmaxCrossEntropy{},
		c1, NewTanh(),
		s2,
		NewDense(filters*half*half, 16, rng), NewTanh(),
		NewDense(16, MNISTClasses, rng),
	)
}

// NewMLP builds a plain multi-layer perceptron with sigmoid activations
// and the requested hidden sizes, ending in a linear layer of outSize
// units. It is the model of the paper's §III-D binary-classification
// walkthrough when used with MSE loss, and a lighter MNIST model with
// softmax cross-entropy.
func NewMLP(inSize, outSize int, hidden []int, loss Loss, rng *rand.Rand) (*Model, error) {
	var layers []Layer
	prev := inSize
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewSigmoid())
		prev = h
	}
	layers = append(layers, NewDense(prev, outSize, rng))
	return NewModel(inSize, loss, layers...)
}

// NewBinaryClassifier builds the exact model of §III-D: one sigmoid output
// unit trained with half squared error A = θ(W·X + b), E = ½Σ(ŷ−y)².
func NewBinaryClassifier(inSize int, hidden int, rng *rand.Rand) (*Model, error) {
	return NewModel(inSize, MSE{},
		NewDense(inSize, hidden, rng), NewSigmoid(),
		NewDense(hidden, 1, rng), NewSigmoid(),
	)
}
