package nn

import (
	"math/rand"
	"testing"

	"cryptonn/internal/tensor"
)

func TestNewConvNetSmallGeometry(t *testing.T) {
	for _, side := range []int{4, 8, 14} {
		rng := rand.New(rand.NewSource(1))
		m, err := NewConvNetSmall(side, 2, rng)
		if err != nil {
			t.Fatalf("side %d: %v", side, err)
		}
		x := tensor.NewDense(side*side, 3)
		x.RandInit(rng, 1)
		out, err := m.Forward(x)
		if err != nil {
			t.Fatalf("side %d forward: %v", side, err)
		}
		if out.Rows != MNISTClasses || out.Cols != 3 {
			t.Errorf("side %d: output %dx%d, want %dx3", side, out.Rows, out.Cols, MNISTClasses)
		}
	}
}

func TestNewConvNetSmallRejectsBadGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		side, filters int
	}{
		{7, 2},  // odd side cannot 2×-pool
		{2, 2},  // too small
		{0, 2},  // zero
		{8, 0},  // no filters
		{8, -1}, // negative filters
	}
	for _, c := range cases {
		if _, err := NewConvNetSmall(c.side, c.filters, rng); err == nil {
			t.Errorf("NewConvNetSmall(%d, %d) succeeded, want error", c.side, c.filters)
		}
	}
}

func TestNewConvNetSmallTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewConvNetSmall(8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	x := tensor.NewDense(64, n)
	y := tensor.NewDense(MNISTClasses, n)
	// Two linearly separable synthetic classes: bright top half vs
	// bright bottom half.
	for j := 0; j < n; j++ {
		cls := j % 2
		for i := 0; i < 64; i++ {
			base := 0.1
			if (cls == 0 && i < 32) || (cls == 1 && i >= 32) {
				base = 0.9
			}
			x.Set(i, j, base+0.05*rng.Float64())
		}
		y.Set(cls, j, 1)
	}
	opt, err := NewSGD(0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.TrainBatch(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 30; i++ {
		last, err = m.TrainBatch(x, y, opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease: %.4f → %.4f", first, last)
	}
	acc, err := m.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("separable-task accuracy = %.2f, want ≥ 0.9", acc)
	}
}
