package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cryptonn/internal/tensor"
)

func TestDenseForwardComputesWXPlusB(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense(2, 2, rng)
	l.W, _ = tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	l.B, _ = tensor.FromRows([][]float64{{10}, {20}})
	x, _ := tensor.FromRows([][]float64{{1, 0}, {0, 1}})
	z, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.FromRows([][]float64{{11, 12}, {23, 24}})
	if !tensor.AlmostEqual(z, want, 1e-12) {
		t.Errorf("Forward = %v", z.Rows2D())
	}
}

func TestDenseShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense(3, 2, rng)
	if _, err := l.Forward(tensor.NewDense(4, 1)); err == nil {
		t.Error("wrong input size should fail")
	}
	if _, err := l.Backward(tensor.NewDense(2, 1)); err == nil {
		t.Error("backward before forward should fail")
	}
	if _, err := l.Forward(tensor.NewDense(3, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Backward(tensor.NewDense(3, 2)); err == nil {
		t.Error("wrong gradient shape should fail")
	}
}

func TestActivations(t *testing.T) {
	x, _ := tensor.FromRows([][]float64{{-1, 0, 1}})
	tests := []struct {
		name string
		act  *Activation
		want []float64
	}{
		{"sigmoid", NewSigmoid(), []float64{1 / (1 + math.E), 0.5, 1 / (1 + math.Exp(-1))}},
		{"tanh", NewTanh(), []float64{math.Tanh(-1), 0, math.Tanh(1)}},
		{"relu", NewReLU(), []float64{0, 0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := tt.act.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			for j, w := range tt.want {
				if math.Abs(out.At(0, j)-w) > 1e-12 {
					t.Errorf("%s(%v) = %v, want %v", tt.name, x.At(0, j), out.At(0, j), w)
				}
			}
			if n, err := tt.act.OutputSize(7); err != nil || n != 7 {
				t.Error("activation must preserve size")
			}
			if tt.act.Params() != nil {
				t.Error("activation must have no params")
			}
		})
	}
}

func TestActivationBackwardBeforeForwardFails(t *testing.T) {
	if _, err := NewTanh().Backward(tensor.NewDense(1, 1)); err == nil {
		t.Error("backward before forward should fail")
	}
}

func TestSoftmaxColumnsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.NewDense(10, 5)
	logits.RandInit(rng, 3)
	p := Softmax(logits)
	for j := 0; j < p.Cols; j++ {
		var sum float64
		for i := 0; i < p.Rows; i++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", j, sum)
		}
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	logits, _ := tensor.FromRows([][]float64{{1000}, {1001}})
	p := Softmax(logits)
	if math.IsNaN(p.At(0, 0)) || math.IsNaN(p.At(1, 0)) {
		t.Fatal("softmax overflowed")
	}
	if p.At(1, 0) <= p.At(0, 0) {
		t.Error("larger logit must win")
	}
}

func TestSoftmaxCrossEntropyGradientIsPMinusY(t *testing.T) {
	logits, _ := tensor.FromRows([][]float64{{2, 0}, {1, 0}, {0, 0}})
	y, _ := tensor.FromRows([][]float64{{1, 0}, {0, 1}, {0, 0}})
	loss, grad, err := SoftmaxCrossEntropy{}.Forward(logits, y)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("loss = %v, want positive", loss)
	}
	p := Softmax(logits)
	want, _ := tensor.Sub(p, y)
	want = want.Scale(0.5) // 1/batch
	if !tensor.AlmostEqual(grad, want, 1e-12) {
		t.Error("gradient != (P-Y)/m")
	}
}

func TestLossShapeErrors(t *testing.T) {
	a := tensor.NewDense(2, 2)
	b := tensor.NewDense(3, 2)
	if _, _, err := (SoftmaxCrossEntropy{}).Forward(a, b); err == nil {
		t.Error("mismatched CE should fail")
	}
	if _, _, err := (MSE{}).Forward(a, b); err == nil {
		t.Error("mismatched MSE should fail")
	}
}

func TestMSELossAndGradient(t *testing.T) {
	pred, _ := tensor.FromRows([][]float64{{1, 2}})
	y, _ := tensor.FromRows([][]float64{{0, 0}})
	loss, grad, err := MSE{}.Forward(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if want := (1.0 + 4.0) / 4.0; math.Abs(loss-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	if math.Abs(grad.At(0, 0)-0.5) > 1e-12 || math.Abs(grad.At(0, 1)-1.0) > 1e-12 {
		t.Errorf("grad = %v", grad.Rows2D())
	}
}

// numericalGrad estimates d(loss)/d(param[i]) by central differences.
func numericalGrad(t *testing.T, m *Model, x, y *tensor.Dense, p *tensor.Dense, i int) float64 {
	t.Helper()
	const eps = 1e-5
	orig := p.Data[i]
	lossAt := func(v float64) float64 {
		p.Data[i] = v
		out, err := m.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		loss, _, err := m.Loss.Forward(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	plus := lossAt(orig + eps)
	minus := lossAt(orig - eps)
	p.Data[i] = orig
	return (plus - minus) / (2 * eps)
}

func checkModelGradients(t *testing.T, m *Model, inSize, batch int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewDense(inSize, batch)
	x.RandInit(rng, 1)
	out, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y := tensor.NewDense(out.Rows, batch)
	for j := 0; j < batch; j++ {
		y.Set(rng.Intn(out.Rows), j, 1)
	}

	m.ZeroGrad()
	out, err = m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := m.Loss.Forward(out, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}

	for _, p := range m.Params() {
		// Spot-check a handful of coordinates per parameter tensor.
		n := len(p.Value.Data)
		for _, i := range []int{0, n / 3, n / 2, n - 1} {
			got := p.Grad.Data[i]
			want := numericalGrad(t, m, x, y, p.Value, i)
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %v, numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestGradientCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewMLP(6, 3, []int{5}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkModelGradients(t, m, 6, 4, 99)
}

func TestGradientCheckBinaryClassifierMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := NewBinaryClassifier(4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Binary targets in {0,1} on a single output row.
	x := tensor.NewDense(4, 5)
	x.RandInit(rng, 1)
	y := tensor.NewDense(1, 5)
	for j := 0; j < 5; j++ {
		if rng.Intn(2) == 1 {
			y.Set(0, j, 1)
		}
	}
	m.ZeroGrad()
	out, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := m.Loss.Forward(out, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Params() {
		i := len(p.Value.Data) / 2
		got := p.Grad.Data[i]
		want := numericalGrad(t, m, x, y, p.Value, i)
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("%s[%d]: analytic %v, numeric %v", p.Name, i, got, want)
		}
	}
}

func TestGradientCheckConvNet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	conv, err := NewConv(1, 6, 6, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewAvgPool(2, 6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(36, SoftmaxCrossEntropy{},
		conv, NewTanh(), pool, NewDense(2*3*3, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	checkModelGradients(t, m, 36, 2, 100)
}

func TestModelWiringValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewModel(4, SoftmaxCrossEntropy{}, NewDense(5, 2, rng)); err == nil {
		t.Error("mismatched wiring should fail")
	}
	if _, err := NewModel(4, nil, NewDense(4, 2, rng)); err == nil {
		t.Error("nil loss should fail")
	}
	if _, err := NewModel(4, SoftmaxCrossEntropy{}); err == nil {
		t.Error("empty stack should fail")
	}
}

func TestSGDStepMovesAgainstGradient(t *testing.T) {
	opt, err := NewSGD(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tensor.FromRows([][]float64{{1}})
	g, _ := tensor.FromRows([][]float64{{2}})
	if err := opt.Step([]Param{{Name: "w", Value: v, Grad: g}}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.At(0, 0)-0.8) > 1e-12 {
		t.Errorf("after step: %v, want 0.8", v.At(0, 0))
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	opt, err := NewSGD(0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tensor.FromRows([][]float64{{0}})
	g, _ := tensor.FromRows([][]float64{{1}})
	p := []Param{{Name: "w", Value: v, Grad: g}}
	if err := opt.Step(p); err != nil {
		t.Fatal(err)
	}
	first := v.At(0, 0) // -0.1
	if err := opt.Step(p); err != nil {
		t.Fatal(err)
	}
	second := v.At(0, 0) - first // -0.19
	if math.Abs(first+0.1) > 1e-12 || math.Abs(second+0.19) > 1e-12 {
		t.Errorf("momentum steps: %v then %v", first, second)
	}
}

func TestSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0); err == nil {
		t.Error("zero lr should fail")
	}
	if _, err := NewSGD(0.1, 1); err == nil {
		t.Error("momentum 1 should fail")
	}
	opt, _ := NewSGD(0.1, 0)
	if err := opt.Step([]Param{{}}); err == nil {
		t.Error("nil param tensors should fail")
	}
}

func TestTrainingReducesLossXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewMLP(2, 2, []int{8}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromRows([][]float64{{0, 0, 1, 1}, {0, 1, 0, 1}})
	y, _ := tensor.FromRows([][]float64{{1, 0, 0, 1}, {0, 1, 1, 0}}) // class = XOR
	opt, _ := NewSGD(0.5, 0.9)
	var first, last float64
	for i := 0; i < 600; i++ {
		loss, err := m.TrainBatch(x, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/4 {
		t.Errorf("loss did not drop enough: %v -> %v", first, last)
	}
	acc, err := m.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1 {
		t.Errorf("XOR accuracy = %v, want 1.0", acc)
	}
}

func TestForwardFromAndBackwardTo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewMLP(3, 2, []int{4}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(3, 2)
	x.RandInit(rng, 1)
	full, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0's output fed into ForwardFrom(1) must equal the full pass.
	z0, err := m.Layers[0].Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := m.ForwardFrom(1, z0)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AlmostEqual(full, partial, 1e-12) {
		t.Error("ForwardFrom(1) diverges from full forward")
	}
	if _, err := m.ForwardFrom(99, x); err == nil {
		t.Error("out-of-range ForwardFrom should fail")
	}
	if _, err := m.BackwardTo(-1, full); err == nil {
		t.Error("out-of-range BackwardTo should fail")
	}
}

func TestLeNet5Builds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := NewLeNet5(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Classic LeNet-5 has ~61k parameters; ours matches the architecture.
	if n := m.CountParams(); n < 40_000 || n > 80_000 {
		t.Errorf("LeNet-5 parameter count = %d, outside sanity range", n)
	}
	x := tensor.NewDense(MNISTInputSize, 2)
	x.RandInit(rng, 1)
	out, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != MNISTClasses || out.Cols != 2 {
		t.Errorf("output shape %dx%d", out.Rows, out.Cols)
	}
	if !strings.Contains(m.Summary(), "conv") {
		t.Error("summary should mention conv layers")
	}
}

func TestLeNetSmallTrainsOneStep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewLeNetSmall(rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(MNISTInputSize, 2)
	x.RandInit(rng, 0.5)
	y := tensor.NewDense(MNISTClasses, 2)
	y.Set(3, 0, 1)
	y.Set(7, 1, 1)
	opt, _ := NewSGD(0.01, 0)
	loss, err := m.TrainBatch(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || math.IsNaN(loss) {
		t.Errorf("loss = %v", loss)
	}
}

func TestConvLayerGeometryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := NewConv(1, 5, 5, 2, 3, 3, 0, rng); err == nil {
		t.Error("non-tiling conv should fail")
	}
	if _, err := NewAvgPool(1, 5, 5, 2, 2); err == nil {
		t.Error("non-tiling pool should fail")
	}
	conv, err := NewConv(1, 6, 6, 2, 3, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.Forward(tensor.NewDense(99, 1)); err == nil {
		t.Error("wrong conv input should fail")
	}
	if _, err := conv.Backward(tensor.NewDense(1, 1)); err == nil {
		t.Error("conv backward before forward should fail")
	}
	if _, err := conv.OutputSize(99); err == nil {
		t.Error("wrong OutputSize input should fail")
	}
	pool, err := NewAvgPool(1, 6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Forward(tensor.NewDense(99, 1)); err == nil {
		t.Error("wrong pool input should fail")
	}
	if _, err := pool.OutputSize(99); err == nil {
		t.Error("wrong pool OutputSize should fail")
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewMLP(2, 2, nil, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Make the model deterministic: identity-ish weights.
	dense := m.Layers[0].(*DenseLayer)
	dense.W, _ = tensor.FromRows([][]float64{{10, 0}, {0, 10}})
	dense.B.Zero()
	x, _ := tensor.FromRows([][]float64{{1, 0}, {0, 1}})
	y, _ := tensor.FromRows([][]float64{{1, 0}, {0, 1}})
	preds, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != 0 || preds[1] != 1 {
		t.Errorf("preds = %v", preds)
	}
	acc, err := m.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("accuracy = %v", acc)
	}
}
