package nn

import (
	"math"
	"math/rand"
	"testing"

	"cryptonn/internal/tensor"
)

func TestTopKColsOrderAndTies(t *testing.T) {
	out, _ := tensor.FromRows([][]float64{
		{3, 5},
		{7, 5},
		{3, 1},
		{9, 5},
	})
	got := TopKCols(out, 3)
	want := [][]int{
		{3, 1, 0}, // 9, 7, then the 3-vs-3 tie breaks to lower index
		{0, 1, 3}, // three-way tie at 5 keeps index order
	}
	for j := range want {
		if len(got[j]) != len(want[j]) {
			t.Fatalf("column %d: %v, want %v", j, got[j], want[j])
		}
		for r := range want[j] {
			if got[j][r] != want[j][r] {
				t.Errorf("column %d: %v, want %v", j, got[j], want[j])
				break
			}
		}
	}
	// k larger than the label count clamps.
	if got := TopKCols(out, 10); len(got[0]) != out.Rows {
		t.Errorf("clamped top-k returned %d labels, want %d", len(got[0]), out.Rows)
	}
}

func TestPredictTopKMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewModel(6, MSE{}, NewDense(6, 8, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(6, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	top, err := m.PredictTopK(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range preds {
		if top[j][0] != preds[j] {
			t.Errorf("sample %d: top-1 %d, arg-max %d", j, top[j][0], preds[j])
		}
	}
	if _, err := m.PredictTopK(x, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPrecisionAtK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewModel(3, MSE{}, NewDense(3, 4, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewDense(3, 2)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	top, err := m.PredictTopK(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Targets agree with the predictions on exactly one of the two labels
	// of sample 0 and both labels of sample 1: P@2 = (1/2 + 2/2) / 2.
	y := tensor.NewDense(4, 2)
	y.Set(top[0][0], 0, 1)
	y.Set(top[1][0], 1, 1)
	y.Set(top[1][1], 1, 1)
	p, err := m.PrecisionAtK(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("P@2 = %g, want 0.75", p)
	}
	if _, err := m.PrecisionAtK(x, tensor.NewDense(4, 3), 2); err == nil {
		t.Error("sample-count mismatch accepted")
	}
}
