// Package nn is the neural-network substrate of the reproduction: a
// from-scratch, stdlib-only implementation of fully connected and
// convolutional networks with backpropagation and SGD.
//
// The data convention follows the paper's notation: activations are
// (features × batch) matrices, so a hidden layer computes A = g(W·X + b)
// with one sample per column. Loss gradients carry the 1/batch factor, so
// layer backward passes are plain adjoints.
//
// The package deliberately contains the complete plaintext training path:
// the paper's baseline (LeNet-5, Table III / Fig. 6) runs entirely here,
// and the CryptoNN framework in internal/core swaps the boundary
// computations for secure ones while reusing every middle layer unchanged.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cryptonn/internal/tensor"
)

// ErrShape reports a layer receiving input of the wrong dimension.
var ErrShape = errors.New("nn: shape mismatch")

// Param is one trainable tensor with its gradient accumulator; optimizers
// mutate Value in place.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// Layer is one differentiable stage of a network operating on
// (features × batch) matrices.
type Layer interface {
	// Name identifies the layer in errors and summaries.
	Name() string
	// Forward consumes a (in × batch) matrix and produces (out × batch),
	// caching whatever the backward pass needs.
	Forward(x *tensor.Dense) (*tensor.Dense, error)
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients. It must be called after Forward on the same
	// batch.
	Backward(grad *tensor.Dense) (*tensor.Dense, error)
	// Params exposes trainable parameters; stateless layers return nil.
	Params() []Param
	// OutputSize returns the number of output features for a given input
	// feature count (used to validate network wiring at build time).
	OutputSize(inputSize int) (int, error)
}

// DenseLayer is a fully connected layer computing Z = W·X + b. The bias is
// stored as an Out×1 matrix so optimizers update it through the same Param
// mechanism as the weights.
type DenseLayer struct {
	In, Out int
	W       *tensor.Dense // Out × In
	B       *tensor.Dense // Out × 1
	GradW   *tensor.Dense
	GradB   *tensor.Dense

	x *tensor.Dense // cached input
}

// NewDense constructs a fully connected layer with Xavier-uniform
// initialisation from rng.
func NewDense(in, out int, rng *rand.Rand) *DenseLayer {
	l := &DenseLayer{
		In:    in,
		Out:   out,
		W:     tensor.NewDense(out, in),
		B:     tensor.NewDense(out, 1),
		GradW: tensor.NewDense(out, in),
		GradB: tensor.NewDense(out, 1),
	}
	scale := math.Sqrt(6.0 / float64(in+out))
	l.W.RandInit(rng, scale)
	return l
}

// Name implements Layer.
func (l *DenseLayer) Name() string { return fmt.Sprintf("dense(%d→%d)", l.In, l.Out) }

// OutputSize implements Layer.
func (l *DenseLayer) OutputSize(inputSize int) (int, error) {
	if inputSize != l.In {
		return 0, fmt.Errorf("%w: %s got input size %d", ErrShape, l.Name(), inputSize)
	}
	return l.Out, nil
}

// Forward implements Layer.
func (l *DenseLayer) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if x.Rows != l.In {
		return nil, fmt.Errorf("%w: %s got %d input features", ErrShape, l.Name(), x.Rows)
	}
	l.x = x
	z, err := tensor.MatMul(l.W, x)
	if err != nil {
		return nil, fmt.Errorf("nn: %s forward: %w", l.Name(), err)
	}
	if err := z.AddColVector(l.B.Data); err != nil {
		return nil, fmt.Errorf("nn: %s bias: %w", l.Name(), err)
	}
	return z, nil
}

// Backward implements Layer: dW = dZ·Xᵀ, db = Σ_batch dZ, dX = Wᵀ·dZ.
func (l *DenseLayer) Backward(grad *tensor.Dense) (*tensor.Dense, error) {
	if l.x == nil {
		return nil, fmt.Errorf("nn: %s backward before forward", l.Name())
	}
	if grad.Rows != l.Out || grad.Cols != l.x.Cols {
		return nil, fmt.Errorf("%w: %s got gradient %dx%d", ErrShape, l.Name(), grad.Rows, grad.Cols)
	}
	dW, err := tensor.MatMulT2(grad, l.x)
	if err != nil {
		return nil, fmt.Errorf("nn: %s dW: %w", l.Name(), err)
	}
	if err := l.GradW.AddInPlace(dW); err != nil {
		return nil, err
	}
	db := grad.SumCols()
	for i, v := range db {
		l.GradB.Data[i] += v
	}
	dX, err := tensor.MatMulT1(l.W, grad)
	if err != nil {
		return nil, fmt.Errorf("nn: %s dX: %w", l.Name(), err)
	}
	return dX, nil
}

// Params implements Layer.
func (l *DenseLayer) Params() []Param {
	return []Param{
		{Name: l.Name() + ".W", Value: l.W, Grad: l.GradW},
		{Name: l.Name() + ".b", Value: l.B, Grad: l.GradB},
	}
}

// ZeroGrad clears accumulated gradients.
func (l *DenseLayer) ZeroGrad() {
	l.GradW.Zero()
	l.GradB.Zero()
}

// Activation is an element-wise nonlinearity with its derivative expressed
// in terms of the activation output (sufficient for sigmoid/tanh) or input
// (ReLU caches input sign).
type Activation struct {
	name string
	fn   func(float64) float64
	// dFromOut computes g'(z) from a = g(z) when fromOut, else from z.
	deriv   func(float64) float64
	fromOut bool

	cache *tensor.Dense
}

// NewSigmoid returns the logistic activation θ(z) = 1/(1+e^{−z}) used by
// the paper's binary-classification walkthrough (§III-D).
func NewSigmoid() *Activation {
	return &Activation{
		name:    "sigmoid",
		fn:      func(z float64) float64 { return 1 / (1 + math.Exp(-z)) },
		deriv:   func(a float64) float64 { return a * (1 - a) },
		fromOut: true,
	}
}

// NewTanh returns the hyperbolic-tangent activation, the classic LeNet-5
// nonlinearity.
func NewTanh() *Activation {
	return &Activation{
		name:    "tanh",
		fn:      math.Tanh,
		deriv:   func(a float64) float64 { return 1 - a*a },
		fromOut: true,
	}
}

// NewReLU returns the rectified linear activation.
func NewReLU() *Activation {
	return &Activation{
		name: "relu",
		fn:   func(z float64) float64 { return math.Max(0, z) },
		deriv: func(z float64) float64 {
			if z > 0 {
				return 1
			}
			return 0
		},
		fromOut: false,
	}
}

// Name implements Layer.
func (a *Activation) Name() string { return a.name }

// OutputSize implements Layer.
func (a *Activation) OutputSize(inputSize int) (int, error) { return inputSize, nil }

// Forward implements Layer.
func (a *Activation) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	out := x.Apply(a.fn)
	if a.fromOut {
		a.cache = out
	} else {
		a.cache = x
	}
	return out, nil
}

// Backward implements Layer.
func (a *Activation) Backward(grad *tensor.Dense) (*tensor.Dense, error) {
	if a.cache == nil {
		return nil, fmt.Errorf("nn: %s backward before forward", a.name)
	}
	d := a.cache.Apply(a.deriv)
	out, err := tensor.Hadamard(grad, d)
	if err != nil {
		return nil, fmt.Errorf("nn: %s backward: %w", a.name, err)
	}
	return out, nil
}

// Params implements Layer (none).
func (a *Activation) Params() []Param { return nil }

// Interface compliance checks.
var (
	_ Layer = (*DenseLayer)(nil)
	_ Layer = (*Activation)(nil)
)
