package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"cryptonn/internal/tensor"
)

func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return got
}

func sameOutputs(t *testing.T, a, b *Model, inSize int) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	x := tensor.NewDense(inSize, 3)
	x.RandInit(rng, 1)
	ya, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if ya.Rows != yb.Rows || ya.Cols != yb.Cols {
		t.Fatalf("shapes %dx%d vs %dx%d", ya.Rows, ya.Cols, yb.Rows, yb.Cols)
	}
	for i := range ya.Data {
		if math.Abs(ya.Data[i]-yb.Data[i]) > 1e-12 {
			t.Fatalf("outputs differ at %d: %v vs %v", i, ya.Data[i], yb.Data[i])
		}
	}
}

func TestCheckpointRoundTripMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP(12, 4, []int{8, 5}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, m)
	sameOutputs(t, m, got, 12)
	if got.Loss.Name() != m.Loss.Name() {
		t.Errorf("loss %q, want %q", got.Loss.Name(), m.Loss.Name())
	}
	if got.CountParams() != m.CountParams() {
		t.Errorf("params %d, want %d", got.CountParams(), m.CountParams())
	}
}

func TestCheckpointRoundTripConvNet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewConvNetSmall(8, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, m)
	sameOutputs(t, m, got, 64)
}

func TestCheckpointRoundTripMSEBinaryClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewBinaryClassifier(6, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, m)
	sameOutputs(t, m, got, 6)
	if got.Loss.Name() != (MSE{}).Name() {
		t.Errorf("loss %q, want mse", got.Loss.Name())
	}
}

func TestCheckpointLoadedModelTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := NewMLP(5, 2, []int{4}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, m)
	x := tensor.NewDense(5, 4)
	x.RandInit(rng, 1)
	y := tensor.NewDense(2, 4)
	for j := 0; j < 4; j++ {
		y.Set(j%2, j, 1)
	}
	opt, err := NewSGD(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := got.TrainBatch(x, y, opt)
	if err != nil {
		t.Fatalf("loaded model cannot train: %v", err)
	}
	var last float64
	for i := 0; i < 20; i++ {
		if last, err = got.TrainBatch(x, y, opt); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loaded model loss did not decrease: %v → %v", first, last)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Error("garbage accepted")
	}
	if err := Save(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil model saved")
	}
}

func TestCheckpointVersionGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewMLP(3, 2, []int{2}, SoftmaxCrossEntropy{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped value.
	var cp checkpoint
	if err := gob.NewDecoder(&buf).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	cp.Version = 99
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(&cp); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Error("future version accepted")
	}
}
