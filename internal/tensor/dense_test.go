package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	d, err := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 2 || d.Cols != 3 {
		t.Fatalf("shape %dx%d", d.Rows, d.Cols)
	}
	if d.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", d.At(1, 2))
	}
	d.Set(0, 0, 9)
	if d.At(0, 0) != 9 {
		t.Error("Set failed")
	}
	if got := d.Row(1); got[0] != 4 || got[2] != 6 {
		t.Errorf("Row(1) = %v", got)
	}
	if got := d.Col(1); got[0] != 2 || got[1] != 5 {
		t.Errorf("Col(1) = %v", got)
	}
	rows := d.Rows2D()
	rows[0][0] = 999
	if d.At(0, 0) == 999 {
		t.Error("Rows2D must copy")
	}
}

func TestFromRowsRejectsBadInput(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("empty row should fail")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged input should fail")
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !AlmostEqual(c, want, 1e-12) {
		t.Errorf("MatMul = %v", c.Rows2D())
	}
	if _, err := MatMul(a, NewDense(3, 2)); err == nil {
		t.Error("mismatched MatMul should fail")
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewDense(4, 3)
	b := NewDense(4, 5)
	c := NewDense(3, 5)
	a.RandInit(rng, 1)
	b.RandInit(rng, 1)
	c.RandInit(rng, 1)

	// MatMulT1(a, b) == MatMul(aᵀ, b)
	got, err := MatMulT1(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MatMul(a.Transpose(), b)
	if !AlmostEqual(got, want, 1e-12) {
		t.Error("MatMulT1 mismatch")
	}

	// MatMulT2(a, c) == MatMul(a, cᵀ): a is 4x3, cᵀ is ... c is 3x5 so cᵀ is 5x3 — mismatch.
	// Use shapes that work: MatMulT2(x [4x3], y [5x3]) = x·yᵀ [4x5].
	y := NewDense(5, 3)
	y.RandInit(rng, 1)
	got2, err := MatMulT2(a, y)
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := MatMul(a, y.Transpose())
	if !AlmostEqual(got2, want2, 1e-12) {
		t.Error("MatMulT2 mismatch")
	}

	if _, err := MatMulT1(NewDense(2, 2), NewDense(3, 2)); err == nil {
		t.Error("mismatched MatMulT1 should fail")
	}
	if _, err := MatMulT2(NewDense(2, 2), NewDense(2, 3)); err == nil {
		t.Error("mismatched MatMulT2 should fail")
	}
}

func TestAddSubHadamard(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{10, 20}, {30, 40}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Error("Add wrong")
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0, 0) != 9 {
		t.Error("Sub wrong")
	}
	had, err := Hadamard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if had.At(1, 0) != 90 {
		t.Error("Hadamard wrong")
	}
	bad := NewDense(3, 3)
	if _, err := Add(a, bad); err == nil {
		t.Error("mismatched Add should fail")
	}
	if _, err := Sub(a, bad); err == nil {
		t.Error("mismatched Sub should fail")
	}
	if _, err := Hadamard(a, bad); err == nil {
		t.Error("mismatched Hadamard should fail")
	}
}

func TestInPlaceOps(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{10, 20}})
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 22 {
		t.Error("AddInPlace wrong")
	}
	if err := a.AxpyInPlace(-0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 6 {
		t.Errorf("AxpyInPlace: got %v want 6", a.At(0, 0))
	}
	bad := NewDense(2, 2)
	if err := a.AddInPlace(bad); err == nil {
		t.Error("mismatched AddInPlace should fail")
	}
	if err := a.AxpyInPlace(1, bad); err == nil {
		t.Error("mismatched AxpyInPlace should fail")
	}
}

func TestTransposeApplyScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Error("Transpose wrong")
	}
	sq := a.Apply(func(v float64) float64 { return v * v })
	if sq.At(1, 2) != 36 {
		t.Error("Apply wrong")
	}
	sc := a.Scale(2)
	if sc.At(0, 1) != 4 || a.At(0, 1) != 2 {
		t.Error("Scale must not mutate receiver")
	}
}

func TestBiasBroadcastAndSum(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if err := a.AddColVector([]float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 12 || a.At(1, 0) != 23 {
		t.Errorf("AddColVector: %v", a.Rows2D())
	}
	sums := a.SumCols()
	if sums[0] != 11+12 || sums[1] != 23+24 {
		t.Errorf("SumCols = %v", sums)
	}
	if err := a.AddColVector([]float64{1}); err == nil {
		t.Error("wrong-length bias should fail")
	}
}

func TestMaxAbsAndArgMax(t *testing.T) {
	a, _ := FromRows([][]float64{{-5, 2}, {3, -1}})
	if a.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	if a.ArgMaxCol(0) != 1 {
		t.Error("ArgMaxCol(0) wrong")
	}
	if a.ArgMaxCol(1) != 0 {
		t.Error("ArgMaxCol(1) wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone must deep-copy")
	}
}

func TestFillZero(t *testing.T) {
	a := NewDense(2, 2)
	a.Fill(7)
	if a.At(1, 1) != 7 {
		t.Error("Fill failed")
	}
	a.Zero()
	if a.At(0, 0) != 0 {
		t.Error("Zero failed")
	}
}

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(0, 1) should panic")
		}
	}()
	NewDense(0, 1)
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewDense(3, 4)
		b := NewDense(4, 2)
		a.RandInit(rng, 1)
		b.RandInit(rng, 1)
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		btat, err := MatMul(b.Transpose(), a.Transpose())
		if err != nil {
			return false
		}
		return AlmostEqual(ab.Transpose(), btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix addition commutes.
func TestQuickAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewDense(3, 3)
		b := NewDense(3, 3)
		a.RandInit(rng, 10)
		b.RandInit(rng, 10)
		ab, _ := Add(a, b)
		ba, _ := Add(b, a)
		return AlmostEqual(ab, ba, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqualShapes(t *testing.T) {
	if AlmostEqual(NewDense(1, 2), NewDense(2, 1), 1) {
		t.Error("different shapes should not be equal")
	}
	a := NewDense(1, 1)
	b := NewDense(1, 1)
	b.Set(0, 0, 0.5)
	if AlmostEqual(a, b, 0.4) {
		t.Error("difference above tolerance should fail")
	}
	if !AlmostEqual(a, b, 0.6) {
		t.Error("difference below tolerance should pass")
	}
}

func TestRandInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(10, 10)
	d.RandInit(rng, 0.5)
	for _, v := range d.Data {
		if math.Abs(v) > 0.5 {
			t.Fatalf("value %v outside [-0.5, 0.5]", v)
		}
	}
}
