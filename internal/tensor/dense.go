// Package tensor provides the dense numeric arrays used by the neural
// network substrate: 2-D matrices (Dense) and 3-D feature volumes (Volume)
// with the convolution plumbing (padding, im2col/col2im, pooling) that
// LeNet-5 needs.
//
// The layout convention follows the paper's formulas: activations flow
// through the network as (features × batch) matrices, so the first layer
// computes A = g(W·X + b) with X holding one sample per column — the same
// orientation the secure matrix computation encrypts.
//
// The package is deliberately dependency-free and float64-only; the
// fixed-point bridge to the crypto layer lives in internal/fixedpoint.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrShape reports incompatible dimensions.
var ErrShape = errors.New("tensor: shape mismatch")

// Dense is a row-major 2-D matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from row slices; rows must be rectangular.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrShape)
	}
	d := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != d.Cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), d.Cols)
		}
		copy(d.Data[i*d.Cols:(i+1)*d.Cols], r)
	}
	return d, nil
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Row returns a copy of row i.
func (d *Dense) Row(i int) []float64 {
	out := make([]float64, d.Cols)
	copy(out, d.Data[i*d.Cols:(i+1)*d.Cols])
	return out
}

// Col returns a copy of column j.
func (d *Dense) Col(j int) []float64 {
	out := make([]float64, d.Rows)
	for i := 0; i < d.Rows; i++ {
		out[i] = d.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// Rows2D returns the matrix as row slices (copies).
func (d *Dense) Rows2D() [][]float64 {
	out := make([][]float64, d.Rows)
	for i := range out {
		out[i] = d.Row(i)
	}
	return out
}

// Fill sets every element to v.
func (d *Dense) Fill(v float64) {
	for i := range d.Data {
		d.Data[i] = v
	}
}

// Zero resets all elements.
func (d *Dense) Zero() { d.Fill(0) }

// MatMul computes a·b.
func MatMul(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulT1 computes aᵀ·b.
func MatMulT1(a, b *Dense) (*Dense, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ · %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewDense(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulT2 computes a·bᵀ.
func MatMulT2(a, b *Dense) (*Dense, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: %dx%d · (%dx%d)ᵀ", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var acc float64
			for k, av := range arow {
				acc += av * brow[k]
			}
			out.Data[i*out.Cols+j] = acc
		}
	}
	return out, nil
}

// Add computes a + b.
func Add(a, b *Dense) (*Dense, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Sub computes a − b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out, nil
}

// Hadamard computes the element-wise product a ∘ b.
func Hadamard(a, b *Dense) (*Dense, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: %dx%d ∘ %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out, nil
}

// Scale multiplies every element by s, returning a new matrix.
func (d *Dense) Scale(s float64) *Dense {
	out := d.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddInPlace accumulates b into d.
func (d *Dense) AddInPlace(b *Dense) error {
	if d.Rows != b.Rows || d.Cols != b.Cols {
		return fmt.Errorf("%w: %dx%d += %dx%d", ErrShape, d.Rows, d.Cols, b.Rows, b.Cols)
	}
	for i, v := range b.Data {
		d.Data[i] += v
	}
	return nil
}

// AxpyInPlace computes d += alpha*b (the SGD update kernel).
func (d *Dense) AxpyInPlace(alpha float64, b *Dense) error {
	if d.Rows != b.Rows || d.Cols != b.Cols {
		return fmt.Errorf("%w: axpy %dx%d += %dx%d", ErrShape, d.Rows, d.Cols, b.Rows, b.Cols)
	}
	for i, v := range b.Data {
		d.Data[i] += alpha * v
	}
	return nil
}

// Apply returns f applied element-wise.
func (d *Dense) Apply(f func(float64) float64) *Dense {
	out := NewDense(d.Rows, d.Cols)
	for i, v := range d.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Transpose returns dᵀ.
func (d *Dense) Transpose() *Dense {
	out := NewDense(d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			out.Data[j*out.Cols+i] = d.At(i, j)
		}
	}
	return out
}

// AddColVector adds the column vector v (length Rows) to every column:
// the bias broadcast of W·X + b.
func (d *Dense) AddColVector(v []float64) error {
	if len(v) != d.Rows {
		return fmt.Errorf("%w: vector length %d, rows %d", ErrShape, len(v), d.Rows)
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Data[i*d.Cols : (i+1)*d.Cols]
		for j := range row {
			row[j] += v[i]
		}
	}
	return nil
}

// SumCols returns the vector of row sums (length Rows): the bias gradient
// reduction of dZ across the batch.
func (d *Dense) SumCols() []float64 {
	out := make([]float64, d.Rows)
	for i := 0; i < d.Rows; i++ {
		var acc float64
		for _, v := range d.Data[i*d.Cols : (i+1)*d.Cols] {
			acc += v
		}
		out[i] = acc
	}
	return out
}

// MaxAbs returns the largest absolute element value (used to size
// discrete-log bounds before a secure step).
func (d *Dense) MaxAbs() float64 {
	var m float64
	for _, v := range d.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AlmostEqual reports element-wise equality within tol.
func AlmostEqual(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// RandInit fills d with uniform values in [-scale, scale] from rng;
// the Xavier-style initialisation used by the models.
func (d *Dense) RandInit(rng *rand.Rand, scale float64) {
	for i := range d.Data {
		d.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// ArgMaxCol returns the row index of the maximum in column j: class
// prediction from a (classes × batch) output matrix.
func (d *Dense) ArgMaxCol(j int) int {
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < d.Rows; i++ {
		if v := d.At(i, j); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// String summarises the shape (never dumps contents).
func (d *Dense) String() string { return fmt.Sprintf("Dense(%dx%d)", d.Rows, d.Cols) }
