package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVolumeAccessors(t *testing.T) {
	v := NewVolume(2, 3, 4)
	v.Set(1, 2, 3, 7.5)
	if v.At(1, 2, 3) != 7.5 {
		t.Error("Set/At broken")
	}
	if v.Size() != 24 {
		t.Errorf("Size = %d", v.Size())
	}
	c := v.Clone()
	c.Set(0, 0, 0, 1)
	if v.At(0, 0, 0) == 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	v := NewVolume(2, 2, 2)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	flat := v.Flatten()
	back, err := VolumeFromFlat(flat, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if back.Data[i] != v.Data[i] {
			t.Fatal("flatten round trip broken")
		}
	}
	if _, err := VolumeFromFlat(flat, 3, 2, 2); err == nil {
		t.Error("wrong shape should fail")
	}
}

func TestPad(t *testing.T) {
	v := NewVolume(1, 2, 2)
	v.Set(0, 0, 0, 1)
	v.Set(0, 1, 1, 4)
	p := v.Pad(1)
	if p.H != 4 || p.W != 4 {
		t.Fatalf("padded shape %dx%d", p.H, p.W)
	}
	if p.At(0, 0, 0) != 0 || p.At(0, 3, 3) != 0 {
		t.Error("border must be zero")
	}
	if p.At(0, 1, 1) != 1 || p.At(0, 2, 2) != 4 {
		t.Error("interior shifted wrongly")
	}
	// Pad(0) is a copy.
	p0 := v.Pad(0)
	p0.Set(0, 0, 0, 99)
	if v.At(0, 0, 0) == 99 {
		t.Error("Pad(0) must copy")
	}
}

func TestConvOutSize(t *testing.T) {
	// The paper's Fig. 2 example: 5x5 input, pad 1, filter 3, stride 2 -> 3x3.
	n, err := ConvOutSize(5, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("ConvOutSize = %d, want 3", n)
	}
	if _, err := ConvOutSize(5, 3, 3, 0); err == nil {
		t.Error("non-tiling geometry should fail")
	}
	if _, err := ConvOutSize(5, 0, 1, 0); err == nil {
		t.Error("zero kernel should fail")
	}
	if _, err := ConvOutSize(5, 3, 0, 0); err == nil {
		t.Error("zero stride should fail")
	}
	if _, err := ConvOutSize(5, 3, 1, -1); err == nil {
		t.Error("negative pad should fail")
	}
	if _, err := ConvOutSize(2, 5, 1, 0); err == nil {
		t.Error("kernel larger than input should fail")
	}
}

// referenceConv computes convolution naively for cross-checking Im2Col.
func referenceConv(v *Volume, filter *Volume, stride, pad int) *Dense {
	padded := v.Pad(pad)
	outH := (padded.H-filter.H)/stride + 1
	outW := (padded.W-filter.W)/stride + 1
	out := NewDense(outH, outW)
	for oi := 0; oi < outH; oi++ {
		for oj := 0; oj < outW; oj++ {
			var acc float64
			for c := 0; c < v.C; c++ {
				for di := 0; di < filter.H; di++ {
					for dj := 0; dj < filter.W; dj++ {
						acc += padded.At(c, oi*stride+di, oj*stride+dj) * filter.At(c, di, dj)
					}
				}
			}
			out.Set(oi, oj, acc)
		}
	}
	return out
}

func TestIm2ColMatchesReferenceConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name           string
		c, h, w        int
		kh, kw, stride int
		pad            int
	}{
		{"paper fig2", 1, 5, 5, 3, 3, 2, 1},
		{"lenet c1", 1, 28, 28, 5, 5, 1, 2},
		{"multichannel", 3, 8, 8, 3, 3, 1, 0},
		{"stride 2 no pad", 2, 6, 6, 2, 2, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := NewVolume(tt.c, tt.h, tt.w)
			v.RandInit(rng, 1)
			filter := NewVolume(tt.c, tt.kh, tt.kw)
			filter.RandInit(rng, 1)

			col, err := Im2Col(v, tt.kh, tt.kw, tt.stride, tt.pad)
			if err != nil {
				t.Fatal(err)
			}
			fRow, err := FromRows([][]float64{filter.Flatten()})
			if err != nil {
				t.Fatal(err)
			}
			got, err := MatMul(fRow, col)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceConv(v, filter, tt.stride, tt.pad)
			outH, outW := want.Rows, want.Cols
			for oi := 0; oi < outH; oi++ {
				for oj := 0; oj < outW; oj++ {
					if math.Abs(got.At(0, oi*outW+oj)-want.At(oi, oj)) > 1e-9 {
						t.Fatalf("cell (%d,%d): got %v want %v", oi, oj, got.At(0, oi*outW+oj), want.At(oi, oj))
					}
				}
			}
		})
	}
}

func TestIm2ColGeometryErrors(t *testing.T) {
	v := NewVolume(1, 5, 5)
	if _, err := Im2Col(v, 3, 3, 3, 0); err == nil {
		t.Error("non-tiling stride should fail")
	}
	if _, err := Im2Col(v, 6, 6, 1, 0); err == nil {
		t.Error("oversized kernel should fail")
	}
}

// Property: Col2Im is the adjoint of Im2Col: ⟨Im2Col(x), y⟩ = ⟨x, Col2Im(y)⟩.
func TestQuickCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const c, h, w, k, s, p = 2, 6, 6, 3, 1, 1
		x := NewVolume(c, h, w)
		x.RandInit(rng, 1)
		colX, err := Im2Col(x, k, k, s, p)
		if err != nil {
			return false
		}
		y := NewDense(colX.Rows, colX.Cols)
		y.RandInit(rng, 1)
		backY, err := Col2Im(y, c, h, w, k, k, s, p)
		if err != nil {
			return false
		}
		var lhs, rhs float64
		for i := range colX.Data {
			lhs += colX.Data[i] * y.Data[i]
		}
		for i := range x.Data {
			rhs += x.Data[i] * backY.Data[i]
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCol2ImShapeError(t *testing.T) {
	if _, err := Col2Im(NewDense(1, 1), 1, 5, 5, 3, 3, 1, 0); err == nil {
		t.Error("wrong col shape should fail")
	}
}

func TestAvgPool(t *testing.T) {
	v := NewVolume(1, 4, 4)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	out, err := AvgPool(v, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pooled shape %dx%d", out.H, out.W)
	}
	// Window (0,0): elements 0,1,4,5 -> mean 2.5
	if out.At(0, 0, 0) != 2.5 {
		t.Errorf("pool(0,0) = %v, want 2.5", out.At(0, 0, 0))
	}
	// Window (1,1): elements 10,11,14,15 -> mean 12.5
	if out.At(0, 1, 1) != 12.5 {
		t.Errorf("pool(1,1) = %v, want 12.5", out.At(0, 1, 1))
	}
	if _, err := AvgPool(v, 3, 2); err == nil {
		t.Error("non-tiling pool should fail")
	}
}

func TestAvgPoolBackwardDistributesUniformly(t *testing.T) {
	grad := NewVolume(1, 2, 2)
	grad.Set(0, 0, 0, 4)
	grad.Set(0, 1, 1, 8)
	back, err := AvgPoolBackward(grad, 4, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(0, 0, 0) != 1 || back.At(0, 1, 1) != 1 {
		t.Error("window (0,0) should receive 4/4 each")
	}
	if back.At(0, 2, 2) != 2 || back.At(0, 3, 3) != 2 {
		t.Error("window (1,1) should receive 8/4 each")
	}
	if back.At(0, 0, 2) != 0 {
		t.Error("untouched cells must be zero")
	}
}

// Property: AvgPoolBackward is the adjoint of AvgPool.
func TestQuickAvgPoolAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewVolume(2, 4, 4)
		x.RandInit(rng, 1)
		px, err := AvgPool(x, 2, 2)
		if err != nil {
			return false
		}
		y := NewVolume(px.C, px.H, px.W)
		y.RandInit(rng, 1)
		by, err := AvgPoolBackward(y, 4, 4, 2, 2)
		if err != nil {
			return false
		}
		var lhs, rhs float64
		for i := range px.Data {
			lhs += px.Data[i] * y.Data[i]
		}
		for i := range x.Data {
			rhs += x.Data[i] * by.Data[i]
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNewVolumePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVolume(0,1,1) should panic")
		}
	}()
	NewVolume(0, 1, 1)
}
