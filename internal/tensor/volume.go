package tensor

import (
	"fmt"
	"math/rand"
)

// Volume is a 3-D feature map laid out as [channel][row][col], the unit of
// data flowing through convolutional layers. Data is row-major within each
// channel plane.
type Volume struct {
	C, H, W int
	Data    []float64
}

// NewVolume allocates a zeroed C×H×W volume.
func NewVolume(c, h, w int) *Volume {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid volume shape %dx%dx%d", c, h, w))
	}
	return &Volume{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns element (c, i, j).
func (v *Volume) At(c, i, j int) float64 { return v.Data[(c*v.H+i)*v.W+j] }

// Set assigns element (c, i, j).
func (v *Volume) Set(c, i, j int, x float64) { v.Data[(c*v.H+i)*v.W+j] = x }

// Clone returns a deep copy.
func (v *Volume) Clone() *Volume {
	c := NewVolume(v.C, v.H, v.W)
	copy(c.Data, v.Data)
	return c
}

// Size returns the total number of elements.
func (v *Volume) Size() int { return len(v.Data) }

// Flatten copies the volume into a flat vector (channel-major).
func (v *Volume) Flatten() []float64 {
	out := make([]float64, len(v.Data))
	copy(out, v.Data)
	return out
}

// VolumeFromFlat reshapes a flat channel-major vector into a volume.
func VolumeFromFlat(data []float64, c, h, w int) (*Volume, error) {
	if len(data) != c*h*w {
		return nil, fmt.Errorf("%w: %d values for %dx%dx%d volume", ErrShape, len(data), c, h, w)
	}
	v := NewVolume(c, h, w)
	copy(v.Data, data)
	return v, nil
}

// RandInit fills the volume with uniform values in [-scale, scale].
func (v *Volume) RandInit(rng *rand.Rand, scale float64) {
	for i := range v.Data {
		v.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Pad returns a copy with p zero rows/cols added on every spatial side —
// the "mixed matrix" of Fig. 2, where padding stays plaintext zero while
// the interior may be encrypted.
func (v *Volume) Pad(p int) *Volume {
	if p == 0 {
		return v.Clone()
	}
	out := NewVolume(v.C, v.H+2*p, v.W+2*p)
	for c := 0; c < v.C; c++ {
		for i := 0; i < v.H; i++ {
			srcOff := (c*v.H + i) * v.W
			dstOff := (c*out.H+i+p)*out.W + p
			copy(out.Data[dstOff:dstOff+v.W], v.Data[srcOff:srcOff+v.W])
		}
	}
	return out
}

// ConvOutSize returns the output spatial size for input n, kernel k,
// stride s, padding p; it errors when the geometry does not tile.
func ConvOutSize(n, k, s, p int) (int, error) {
	if k <= 0 || s <= 0 || p < 0 {
		return 0, fmt.Errorf("%w: kernel %d stride %d pad %d", ErrShape, k, s, p)
	}
	if (n+2*p-k)%s != 0 {
		return 0, fmt.Errorf("%w: (%d+2*%d-%d) not divisible by stride %d", ErrShape, n, p, k, s)
	}
	out := (n+2*p-k)/s + 1
	if out <= 0 {
		return 0, fmt.Errorf("%w: non-positive output size %d", ErrShape, out)
	}
	return out, nil
}

// Im2Col lowers convolution to matrix multiplication: every sliding window
// of the padded volume becomes one column. The result has C*kh*kw rows and
// outH*outW columns, so filters-as-rows times Im2Col equals the
// convolution output. This is also exactly the window extraction that the
// secure convolution scheme (Algorithm 3) encrypts: each column is one
// window vector t.
func Im2Col(v *Volume, kh, kw, stride, pad int) (*Dense, error) {
	outH, err := ConvOutSize(v.H, kh, stride, pad)
	if err != nil {
		return nil, err
	}
	outW, err := ConvOutSize(v.W, kw, stride, pad)
	if err != nil {
		return nil, err
	}
	padded := v.Pad(pad)
	col := NewDense(v.C*kh*kw, outH*outW)
	for oi := 0; oi < outH; oi++ {
		for oj := 0; oj < outW; oj++ {
			outIdx := oi*outW + oj
			r := 0
			for c := 0; c < v.C; c++ {
				for di := 0; di < kh; di++ {
					rowOff := (c*padded.H + oi*stride + di) * padded.W
					base := rowOff + oj*stride
					for dj := 0; dj < kw; dj++ {
						col.Data[r*col.Cols+outIdx] = padded.Data[base+dj]
						r++
					}
				}
			}
		}
	}
	return col, nil
}

// Col2Im is the adjoint of Im2Col: it scatters patch-gradient columns back
// into an input-shaped volume, accumulating where windows overlap. It is
// the input-gradient path of the convolutional layer.
func Col2Im(col *Dense, c, h, w, kh, kw, stride, pad int) (*Volume, error) {
	outH, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return nil, err
	}
	outW, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return nil, err
	}
	if col.Rows != c*kh*kw || col.Cols != outH*outW {
		return nil, fmt.Errorf("%w: col is %dx%d, want %dx%d", ErrShape, col.Rows, col.Cols, c*kh*kw, outH*outW)
	}
	paddedH, paddedW := h+2*pad, w+2*pad
	padded := NewVolume(c, paddedH, paddedW)
	for oi := 0; oi < outH; oi++ {
		for oj := 0; oj < outW; oj++ {
			outIdx := oi*outW + oj
			r := 0
			for ch := 0; ch < c; ch++ {
				for di := 0; di < kh; di++ {
					rowOff := (ch*paddedH + oi*stride + di) * paddedW
					base := rowOff + oj*stride
					for dj := 0; dj < kw; dj++ {
						padded.Data[base+dj] += col.Data[r*col.Cols+outIdx]
						r++
					}
				}
			}
		}
	}
	if pad == 0 {
		return padded, nil
	}
	out := NewVolume(c, h, w)
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h; i++ {
			srcOff := (ch*paddedH+i+pad)*paddedW + pad
			dstOff := (ch*h + i) * w
			copy(out.Data[dstOff:dstOff+w], padded.Data[srcOff:srcOff+w])
		}
	}
	return out, nil
}

// AvgPool computes average pooling with square window k and stride s,
// returning the pooled volume.
func AvgPool(v *Volume, k, s int) (*Volume, error) {
	outH, err := ConvOutSize(v.H, k, s, 0)
	if err != nil {
		return nil, err
	}
	outW, err := ConvOutSize(v.W, k, s, 0)
	if err != nil {
		return nil, err
	}
	out := NewVolume(v.C, outH, outW)
	inv := 1.0 / float64(k*k)
	for c := 0; c < v.C; c++ {
		for oi := 0; oi < outH; oi++ {
			for oj := 0; oj < outW; oj++ {
				var acc float64
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						acc += v.At(c, oi*s+di, oj*s+dj)
					}
				}
				out.Set(c, oi, oj, acc*inv)
			}
		}
	}
	return out, nil
}

// AvgPoolBackward distributes output gradients uniformly back over each
// pooling window.
func AvgPoolBackward(grad *Volume, inH, inW, k, s int) (*Volume, error) {
	out := NewVolume(grad.C, inH, inW)
	inv := 1.0 / float64(k*k)
	for c := 0; c < grad.C; c++ {
		for oi := 0; oi < grad.H; oi++ {
			for oj := 0; oj < grad.W; oj++ {
				g := grad.At(c, oi, oj) * inv
				for di := 0; di < k; di++ {
					for dj := 0; dj < k; dj++ {
						i, j := oi*s+di, oj*s+dj
						if i < inH && j < inW {
							out.Set(c, i, j, out.At(c, i, j)+g)
						}
					}
				}
			}
		}
	}
	return out, nil
}

// String summarises the shape.
func (v *Volume) String() string { return fmt.Sprintf("Volume(%dx%dx%d)", v.C, v.H, v.W) }
