package tensor

import (
	"math/rand"
	"testing"
)

func benchDense(rows, cols int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(rows, cols)
	d.RandInit(rng, 1)
	return d
}

func BenchmarkMatMul(b *testing.B) {
	a := benchDense(32, 784, 1)
	x := benchDense(784, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(a, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulT2(b *testing.B) {
	dz := benchDense(32, 64, 1)
	x := benchDense(784, 64, 2) // dW = dZ·Xᵀ
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulT2(dz, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIm2Col(b *testing.B) {
	vol, err := VolumeFromFlat(benchDense(1*28*28, 1, 3).Col(0), 1, 28, 28)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Im2Col(vol, 5, 5, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranspose(b *testing.B) {
	d := benchDense(784, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Transpose()
	}
}

func BenchmarkHadamard(b *testing.B) {
	x := benchDense(256, 64, 1)
	y := benchDense(256, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hadamard(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
