package main

import (
	"testing"

	"cryptonn/internal/mnist"
)

func TestRunFailsWithoutAuthority(t *testing.T) {
	// Nothing listens on this address; the dial must fail cleanly.
	err := run([]string{"-authority", "127.0.0.1:1", "-server", "127.0.0.1:1"})
	if err == nil {
		t.Error("run succeeded with no authority")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSyntheticInputsDigitPath(t *testing.T) {
	x, truth, err := syntheticInputs(49, 5, 3) // 7×7 pools from 28×28
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 49 || x.Cols != 5 {
		t.Fatalf("shape %dx%d, want 49x5", x.Rows, x.Cols)
	}
	for i, c := range truth {
		if c < 0 || c >= mnist.Classes {
			t.Errorf("truth[%d] = %d out of range", i, c)
		}
	}
}

func TestSyntheticInputsGenericFallback(t *testing.T) {
	x, truth, err := syntheticInputs(13, 3, 1) // 13 is not a square
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 13 || x.Cols != 3 {
		t.Fatalf("shape %dx%d, want 13x3", x.Rows, x.Cols)
	}
	for i, c := range truth {
		if c != -1 {
			t.Errorf("truth[%d] = %d, want -1 (no ground truth)", i, c)
		}
	}
}

func TestIntSqrt(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 49: 7, 196: 14, 784: 28, 13: 0, 0: 0}
	for v, want := range cases {
		if got := intSqrt(v); got != want {
			t.Errorf("intSqrt(%d) = %d, want %d", v, got, want)
		}
	}
}
