// Command cryptonn-predict is a prediction client (§III-D): it encrypts
// input samples under the authority's public keys and asks a running
// training server (started with -predict-listen) for their classes. The
// server sees only ciphertexts; if a label-mapping key is supplied, the
// classes the server reports are masked and this client inverts them
// locally.
//
// Usage:
//
//	cryptonn-predict -authority 127.0.0.1:7001 -server 127.0.0.1:7003 \
//	    -features 196 -classes 10 -samples 8 -label-key clinic-shared-secret
//
// Inputs are synthesized deterministically from -seed (the same generator
// as cryptonn-client), so a client/server pair started with matching
// flags demonstrates the full encrypted prediction loop.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/mnist"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-predict:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-predict", flag.ContinueOnError)
	authorityAddr := fs.String("authority", "127.0.0.1:7001", "authority address")
	serverAddr := fs.String("server", "127.0.0.1:7003", "prediction server address")
	features := fs.Int("features", 784, "input feature count (must match the server's model)")
	classes := fs.Int("classes", 10, "output classes")
	samples := fs.Int("samples", 8, "samples to predict")
	labelKey := fs.String("label-key", "", "label-mapping key shared among data owners (empty: identity)")
	seed := fs.Int64("seed", 7, "synthetic data seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	keys, err := wire.DialKeyService(*authorityAddr)
	if err != nil {
		return err
	}
	defer keys.Close()

	var labels *core.LabelMap
	if *labelKey != "" {
		labels, err = core.NewLabelMap(*classes, []byte(*labelKey))
		if err != nil {
			return err
		}
	}
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{})
	if err != nil {
		return err
	}
	client, err := core.NewClient(eng, fixedpoint.Default(), labels)
	if err != nil {
		return err
	}

	x, truth, err := syntheticInputs(*features, *samples, *seed)
	if err != nil {
		return err
	}
	// Placeholder labels: prediction touches only the input ciphertexts,
	// but the batch format carries a label matrix.
	y := tensor.NewDense(*classes, *samples)
	for j := 0; j < *samples; j++ {
		y.Set(truth[j]%*classes, j, 1)
	}
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		return err
	}

	conn, err := net.Dial("tcp", *serverAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	masked, err := wire.RequestPrediction(conn, enc)
	if err != nil {
		return err
	}

	fmt.Printf("%d encrypted samples predicted:\n", *samples)
	correct := 0
	for j, m := range masked {
		cls := m
		if labels != nil {
			if cls, err = labels.Invert(m); err != nil {
				return err
			}
		}
		mark := ""
		if truth[j] >= 0 {
			if cls == truth[j]%*classes {
				mark = " ✓"
				correct++
			} else {
				mark = " ✗"
			}
		}
		if labels != nil {
			fmt.Printf("  sample %d: masked %d → class %d%s\n", j, m, cls, mark)
		} else {
			fmt.Printf("  sample %d: class %d%s\n", j, cls, mark)
		}
	}
	fmt.Printf("%d/%d match the synthetic ground truth\n", correct, *samples)
	return nil
}

// syntheticInputs renders deterministic digit images (pooled to the
// requested feature count when it divides the MNIST geometry) or falls
// back to a generic deterministic pattern.
func syntheticInputs(features, n int, seed int64) (*tensor.Dense, []int, error) {
	truth := make([]int, n)
	if side := intSqrt(features); side > 0 && mnist.Side%side == 0 {
		ds, err := mnist.Synthetic(n, seed)
		if err != nil {
			return nil, nil, err
		}
		x, _, err := ds.Batch(0, n)
		if err != nil {
			return nil, nil, err
		}
		copy(truth, ds.Labels[:n])
		f := mnist.Side / side
		return poolCols(x, f), truth, nil
	}
	x := tensor.NewDense(features, n)
	for j := 0; j < n; j++ {
		truth[j] = -1 // no ground truth for generic patterns
		for i := 0; i < features; i++ {
			x.Set(i, j, float64((i*31+j*17+int(seed))%100)/100)
		}
	}
	return x, truth, nil
}

func intSqrt(v int) int {
	for s := 1; s*s <= v; s++ {
		if s*s == v {
			return s
		}
	}
	return 0
}

// poolCols average-pools flattened 28×28 columns by factor f.
func poolCols(x *tensor.Dense, f int) *tensor.Dense {
	if f <= 1 {
		return x
	}
	out := mnist.Side / f
	pooled := tensor.NewDense(out*out, x.Cols)
	inv := 1 / float64(f*f)
	for c := 0; c < x.Cols; c++ {
		for oy := 0; oy < out; oy++ {
			for ox := 0; ox < out; ox++ {
				var sum float64
				for dy := 0; dy < f; dy++ {
					for dx := 0; dx < f; dx++ {
						sum += x.At((oy*f+dy)*mnist.Side+(ox*f+dx), c)
					}
				}
				pooled.Set(oy*out+ox, c, sum*inv)
			}
		}
	}
	return pooled
}
