package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapshot writes a benchjson array to a temp file and returns its path.
func snapshot(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseJSON = `[
  {"name": "pkg.BenchmarkExp/bits=256", "iterations": 100, "ns_per_op": 1000},
  {"name": "pkg.BenchmarkServeWire/codec=binary/conns=1024", "iterations": 20,
   "ns_per_op": 300000000, "extra": {"samples/sec": 3400}},
  {"name": "pkg.BenchmarkRetired", "iterations": 5, "ns_per_op": 50}
]`

func TestBenchdiffCleanRun(t *testing.T) {
	base := snapshot(t, "base.json", baseJSON)
	cur := snapshot(t, "cur.json", `[
  {"name": "pkg.BenchmarkExp/bits=256", "iterations": 100, "ns_per_op": 1100},
  {"name": "pkg.BenchmarkServeWire/codec=binary/conns=1024", "iterations": 20,
   "ns_per_op": 310000000, "extra": {"samples/sec": 3300}},
  {"name": "pkg.BenchmarkFresh", "iterations": 9, "ns_per_op": 70}
]`)
	var out strings.Builder
	if code := run([]string{"-baseline", base, "-current", cur}, &out); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"ok    pkg.BenchmarkExp/bits=256", // +10% is under the 25% default threshold
		"NEW   pkg.BenchmarkFresh",
		"GONE  pkg.BenchmarkRetired",
		"[3400 → 3300 samples/sec]",
		"no gated regression",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestBenchdiffGatedRegressionFails(t *testing.T) {
	base := snapshot(t, "base.json", baseJSON)
	cur := snapshot(t, "cur.json", `[
  {"name": "pkg.BenchmarkExp/bits=256", "iterations": 100, "ns_per_op": 2000}
]`)
	var out strings.Builder
	if code := run([]string{"-baseline", base, "-current", cur}, &out); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL  pkg.BenchmarkExp/bits=256") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestBenchdiffUngatedRegressionIsReportOnly(t *testing.T) {
	// A 10x slowdown on a benchmark outside the gate regexp must not
	// fail the run — loopback throughput numbers are load-sensitive.
	base := snapshot(t, "base.json", baseJSON)
	cur := snapshot(t, "cur.json", `[
  {"name": "pkg.BenchmarkServeWire/codec=binary/conns=1024", "iterations": 20,
   "ns_per_op": 3000000000, "extra": {"samples/sec": 340}}
]`)
	var out strings.Builder
	if code := run([]string{"-baseline", base, "-current", cur}, &out); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "info  pkg.BenchmarkServeWire") {
		t.Errorf("missing info line:\n%s", out.String())
	}
}

func TestBenchdiffCustomGateAndThreshold(t *testing.T) {
	base := snapshot(t, "base.json", baseJSON)
	cur := snapshot(t, "cur.json", `[
  {"name": "pkg.BenchmarkServeWire/codec=binary/conns=1024", "iterations": 20,
   "ns_per_op": 400000000, "extra": {"samples/sec": 2550}}
]`)
	var out strings.Builder
	args := []string{"-baseline", base, "-current", cur, "-gate", "ServeWire", "-threshold", "0.30"}
	if code := run(args, &out); code != 1 {
		t.Fatalf("exit %d, want 1 (+33%% > 30%% threshold)\n%s", code, out.String())
	}
	out.Reset()
	args[len(args)-1] = "0.40"
	if code := run(args, &out); code != 0 {
		t.Fatalf("exit %d, want 0 (+33%% < 40%% threshold)\n%s", code, out.String())
	}
}

func TestBenchdiffBadInputs(t *testing.T) {
	base := snapshot(t, "base.json", baseJSON)
	empty := snapshot(t, "empty.json", `[]`)
	for _, tc := range [][]string{
		{"-current", base},                                  // missing -baseline
		{"-baseline", base},                                 // missing -current
		{"-baseline", base, "-current", empty},              // empty snapshot
		{"-baseline", base, "-current", "nope"},             // unreadable file
		{"-baseline", base, "-current", base, "-gate", "("}, // bad regexp
	} {
		var out strings.Builder
		if code := run(tc, &out); code != 2 {
			t.Errorf("args %v: exit %d, want 2", tc, code)
		}
	}
}
