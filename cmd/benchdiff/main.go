// Command benchdiff compares two benchjson snapshots (see cmd/benchjson)
// and enforces the CI perf-regression gate: benchmarks whose qualified
// name matches -gate fail the run when their ns/op regresses beyond
// -threshold against the committed baseline; everything else is
// report-only. Names are matched exactly, so renamed or new benchmarks
// never fail the gate — they are listed as NEW/GONE for the reviewer.
//
// Usage:
//
//	benchdiff -baseline BENCH_pr7.json -current bench.json [-threshold 0.25]
//
// The threshold is a fraction: 0.25 fails a gated benchmark that got
// >25% slower. CI compares runner measurements against a baseline
// recorded on a different machine, so its threshold is deliberately
// generous (see .github/workflows/ci.yml) — the gate exists to catch
// order-of-magnitude rots (an accidental O(n²), a lost fast path), not
// single-digit noise. Exit status: 0 clean, 1 gate failure, 2 usage or
// I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// result mirrors cmd/benchjson's Result.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// defaultGate selects the single-threaded hot-path benchmarks stable
// enough to gate on: the group arithmetic atoms (including the 4-limb
// Montgomery kernels, the comb-vs-window fixed-base sweep, and the
// sparse MultiExp variants), the FE primitive costs (dense and
// coordinate-form sparse encryption), the dlog lookup and the top-k
// descending scan, the securemat decrypt pipeline, and the table-cache
// cold-start load path. Loopback throughput benchmarks (ServeCoalesced,
// ServeWire, Fig3 parallel) and the parallelism-sensitive end-to-end
// ICD sweep are load-sensitive and stay report-only by default.
const defaultGate = `Benchmark(Exp/|MulMont|FixedBasePow.*table|CombVsWindow|ColdStart.*load|Lookup$|Encrypt/|Decrypt/|BatchedDecrypt|EncryptSparse/|MultiExpSparse|TopKDecrypt)`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "baseline snapshot (the committed BENCH_pr<N>.json)")
	current := fs.String("current", "", "snapshot to check (the fresh bench run)")
	threshold := fs.Float64("threshold", 0.25, "fractional ns/op regression that fails a gated benchmark")
	gate := fs.String("gate", defaultGate, "regexp over qualified names; matching benchmarks fail on regression, others are report-only")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		return 2
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -gate: %v\n", err)
		return 2
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(out, "NEW   %s  %.0f ns/op (no baseline)\n", name, c.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 {
			fmt.Fprintf(out, "SKIP  %s  zero baseline\n", name)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok   "
		gated := gateRe.MatchString(name)
		switch {
		case gated && delta > *threshold:
			verdict = "FAIL "
			failures++
		case !gated:
			verdict = "info "
		}
		fmt.Fprintf(out, "%s %s  %.0f → %.0f ns/op (%+.1f%%)%s\n",
			verdict, name, b.NsPerOp, c.NsPerOp, delta*100, throughputNote(b, c))
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(out, "GONE  %s  (in baseline, not in current run)\n", name)
		}
	}
	if failures > 0 {
		fmt.Fprintf(out, "benchdiff: %d gated benchmark(s) regressed beyond %.0f%% — see FAIL lines; if the\n", failures, *threshold*100)
		fmt.Fprintf(out, "slowdown is intended, refresh the baseline via `make bench-json` and commit it.\n")
		return 1
	}
	fmt.Fprintf(out, "benchdiff: %d benchmark(s) compared, no gated regression beyond %.0f%%\n", len(names), *threshold*100)
	return 0
}

// throughputNote annotates the samples/sec delta when both runs carry it.
func throughputNote(b, c result) string {
	bs, cs := b.Extra["samples/sec"], c.Extra["samples/sec"]
	if bs <= 0 || cs <= 0 {
		return ""
	}
	return fmt.Sprintf("  [%.0f → %.0f samples/sec]", bs, cs)
}

// load reads one benchjson snapshot into a name-keyed map.
func load(path string) (map[string]result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(buf, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: empty snapshot", path)
	}
	m := make(map[string]result, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m, nil
}
