// Command cryptonn-train runs the full Table III / Fig. 6 style
// experiment locally in one process: it trains a plaintext baseline and a
// CryptoNN twin from identical initialisation on the same (MNIST or
// synthetic) data and prints the accuracy-parity series plus the timing
// comparison.
//
// Usage:
//
//	cryptonn-train                       # scaled MLP run, minutes
//	cryptonn-train -arch cnn             # CryptoCNN (secure convolution)
//	cryptonn-train -samples 60000 -batch 64 -epochs 2 -bits 256
//	                                     # the paper's parameters (slow)
//	cryptonn-train -authority 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	                                     # keys from a threshold authority cluster
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cryptonn/internal/experiments"
	"cryptonn/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-train", flag.ContinueOnError)
	arch := fs.String("arch", "mlp", "architecture: mlp or cnn")
	samples := fs.Int("samples", 0, "training samples (0 = scaled default)")
	test := fs.Int("test", 0, "test samples (0 = scaled default)")
	batch := fs.Int("batch", 0, "batch size (paper: 64)")
	epochs := fs.Int("epochs", 0, "epochs (paper: 2)")
	lr := fs.Float64("lr", 0, "learning rate")
	tick := fs.Int("tick", 0, "Fig. 6 averaging window in batches (paper: 50)")
	bits := fs.Int("bits", 0, "group modulus bits (paper: 256; default 64)")
	par := fs.Int("par", -1, "decryption workers (-1 = NumCPU)")
	seed := fs.Int64("seed", 1, "seed")
	pool := fs.Int("pool", 2, "input down-pooling factor (1 = paper's 28×28)")
	hidden := fs.Int("hidden", 16, "MLP hidden width (paper: 32)")
	authorityAddrs := fs.String("authority", "", "remote authority address(es); comma-separated list = threshold cluster (empty = in-process)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.TrainConfig{
		Bits:         *bits,
		Arch:         experiments.Arch(*arch),
		TrainSamples: *samples,
		TestSamples:  *test,
		BatchSize:    *batch,
		Epochs:       *epochs,
		LR:           *lr,
		TickBatches:  *tick,
		Parallelism:  *par,
		Seed:         *seed,
		Pool:         *pool,
		Hidden:       *hidden,
	}
	if *authorityAddrs != "" {
		logger := log.New(os.Stderr, "train: ", log.LstdFlags)
		list := strings.Split(*authorityAddrs, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		if len(list) == 1 {
			keys, err := wire.DialKeyService(list[0])
			if err != nil {
				return err
			}
			defer keys.Close()
			cfg.KeyService = keys
		} else {
			q, err := wire.DialQuorumKeyService(list, wire.QuorumOptions{Logger: logger})
			if err != nil {
				return err
			}
			defer q.Close()
			t, n := q.Threshold()
			logger.Printf("threshold authority cluster: %d nodes, quorum T=%d", n, t)
			cfg.KeyService = q
		}
	}
	if *samples == 0 {
		cfg.TrainSamples = 100
		cfg.TestSamples = 60
		cfg.BatchSize = 10
		cfg.TickBatches = 2
		if cfg.Arch == experiments.ArchCNN {
			cfg.TrainSamples = 32
			cfg.TestSamples = 32
			cfg.BatchSize = 8
			cfg.Epochs = 1
			cfg.TickBatches = 1
		}
	}

	fmt.Printf("CryptoNN vs plaintext baseline (%s)\n\n", cfg.Arch)
	points, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s   (Fig. 6: average batch accuracy)\n", "tick", "baseline", "CryptoNN")
	for _, p := range points {
		fmt.Printf("%-6d %12.4f %12.4f\n", p.Tick, p.Plain, p.CryptoNN)
	}

	res, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nTable III\n%-12s", "model")
	for e := range res.PlainAcc {
		fmt.Printf(" epoch %d (acc)", e+1)
	}
	fmt.Printf(" %14s\n", "training time")
	fmt.Printf("%-12s", "baseline")
	for _, a := range res.PlainAcc {
		fmt.Printf(" %12.2f%%", a*100)
	}
	fmt.Printf(" %14s\n", res.PlainTime.Round(1e6))
	fmt.Printf("%-12s", "CryptoNN")
	for _, a := range res.CryptoAcc {
		fmt.Printf(" %12.2f%%", a*100)
	}
	fmt.Printf(" %14s\n", res.CryptoTime.Round(1e6))
	fmt.Printf("\nsecure/plain training-time ratio: %.1fx (paper: ~14x at 256-bit, full MNIST)\n", res.Overhead)
	fmt.Printf("client-side encryption (one-off): %s\n", res.EncryptTime.Round(1e6))
	return nil
}
