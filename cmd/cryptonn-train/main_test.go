package main

import "testing"

func TestRunTinyTrainingComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("secure training run; skipped in -short")
	}
	err := run([]string{
		"-samples", "20", "-test", "20", "-batch", "10", "-epochs", "1",
		"-pool", "4", "-hidden", "4", "-tick", "1", "-par", "1",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRejectsUnknownArch(t *testing.T) {
	if err := run([]string{"-arch", "gpt", "-samples", "20", "-batch", "10"}); err == nil {
		t.Error("unknown arch accepted")
	}
}
