package main

import (
	"strings"
	"testing"
)

const sample = `go test -run '^$' -bench 'BenchmarkEncrypt' ./internal/feip/
goos: linux
goarch: amd64
pkg: cryptonn/internal/feip
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEncrypt/eta=784-4         	    8516	    259353 ns/op
BenchmarkEncrypt/eta=784-4         	    9000	    250001 ns/op
BenchmarkDecrypt/eta=100-4         	   40000	     29000 ns/op	   12345 B/op	     678 allocs/op
PASS
ok  	cryptonn/internal/feip	4.182s
pkg: cryptonn/internal/febo
BenchmarkEncrypt-4   	  413322	      1228.5 ns/op
not a bench line
pkg: cryptonn/internal/service
BenchmarkServeCoalesced/coalesced/clients=4/batch=1-4         	     200	   1328194 ns/op	         4.000 samples/eval	      3012 samples/sec
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	enc, ok := byName["cryptonn/internal/feip.BenchmarkEncrypt/eta=784"]
	if !ok {
		t.Fatalf("missing qualified feip encrypt result: %+v", results)
	}
	if enc.NsPerOp != 250001 {
		t.Errorf("duplicate benchmark kept ns/op = %v, want the minimum 250001", enc.NsPerOp)
	}
	dec := byName["cryptonn/internal/feip.BenchmarkDecrypt/eta=100"]
	if dec.BytesPerOp != 12345 || dec.AllocsPerOp != 678 {
		t.Errorf("benchmem fields = %d B/op %d allocs/op", dec.BytesPerOp, dec.AllocsPerOp)
	}
	febo := byName["cryptonn/internal/febo.BenchmarkEncrypt"]
	if febo.NsPerOp != 1228.5 {
		t.Errorf("febo ns/op = %v", febo.NsPerOp)
	}
	if febo.Iterations != 413322 {
		t.Errorf("febo iterations = %d", febo.Iterations)
	}
	serve := byName["cryptonn/internal/service.BenchmarkServeCoalesced/coalesced/clients=4/batch=1"]
	if serve.Extra["samples/sec"] != 3012 || serve.Extra["samples/eval"] != 4 {
		t.Errorf("custom metrics not captured: %+v", serve.Extra)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"Benchmark",
		"BenchmarkX-4 12",
		"BenchmarkX-4 notanumber 5 ns/op",
		"ok  	cryptonn/internal/feip	4.182s",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}
