// Command benchjson converts `go test -bench` text output into a stable,
// machine-readable JSON snapshot so the repo's performance trajectory can
// be tracked without parsing benchstat text: `make bench-json` pipes the
// full hot-path benchmark suite through it and writes BENCH_pr<N>.json.
//
// Input is read from stdin. Lines that are not benchmark results (build
// noise, make echo, PASS/ok trailers) are ignored; `pkg:` headers qualify
// benchmark names so identically named benchmarks from different packages
// (feip/febo/elgamal all have BenchmarkEncrypt) stay distinct. When the
// same qualified benchmark appears multiple times (-count > 1), the
// minimum ns/op is kept — the least-noise estimate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, qualified by package. Extra carries
// custom b.ReportMetric units (samples/sec, samples/eval, ...) so
// throughput stories survive into the snapshot alongside ns/op.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans go-test output and returns the qualified results sorted by
// name.
func parse(r io.Reader) ([]Result, error) {
	best := map[string]Result{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if pkg != "" {
			res.Name = pkg + "." + res.Name
		}
		if prev, seen := best[res.Name]; !seen || res.NsPerOp < prev.NsPerOp {
			best[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// parseBenchLine parses one `BenchmarkName-P  N  T ns/op [B B/op] [A allocs/op]`
// line, reporting ok=false for anything else.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	// Strip the -GOMAXPROCS suffix the bench runner appends.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			res.NsPerOp = ns
			seenNs = true
		case "B/op":
			res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			// Custom b.ReportMetric units; anything non-numeric in the
			// value column means this is not a metric pair.
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				continue
			}
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = f
		}
	}
	return res, seenNs
}
