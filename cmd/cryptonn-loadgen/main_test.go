package main

import (
	"strings"
	"testing"
)

func TestRunFailsWithoutAuthority(t *testing.T) {
	// Nothing listens on this address; the dial must fail cleanly.
	err := run([]string{"-authority", "127.0.0.1:1", "-server", "127.0.0.1:1"})
	if err == nil {
		t.Error("run succeeded with no authority")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRejectsNonPositiveLoad(t *testing.T) {
	for _, args := range [][]string{
		{"-clients", "0"},
		{"-requests", "0"},
		{"-samples", "-1"},
	} {
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), "positive") {
			t.Errorf("args %v: err = %v, want positive-load validation", args, err)
		}
	}
}
