// Command cryptonn-loadgen measures prediction-serving throughput: it
// drives N concurrent prediction clients against a running server
// (started with -predict-listen) and prints aggregate throughput and
// latency percentiles. With several clients it exercises the server's
// cross-client batch coalescing; with -clients 1 it measures the serial
// per-connection baseline for comparison.
//
// Usage:
//
//	cryptonn-loadgen -authority 127.0.0.1:7001 -server 127.0.0.1:7003 \
//	    -features 784 -classes 10 -clients 8 -samples 1 -requests 50
//
// Each client encrypts one deterministic batch of -samples inputs up
// front (prediction touches only the input ciphertexts, so the batch is
// reusable) and then issues -requests back-to-back prediction calls on
// its own connection. Requests rejected under server backpressure
// (wire.ErrBusy) back off exponentially and retry; retries are counted
// and reported.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-loadgen:", err)
		os.Exit(1)
	}
}

// clientReport aggregates one client's measurements.
type clientReport struct {
	lats        []time.Duration
	busyRetries int
	err         error
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-loadgen", flag.ContinueOnError)
	authorityAddr := fs.String("authority", "127.0.0.1:7001", "authority address")
	serverAddr := fs.String("server", "127.0.0.1:7003", "prediction server address")
	features := fs.Int("features", 784, "input feature count (must match the server's model)")
	classes := fs.Int("classes", 10, "output classes (must match the server's model)")
	clients := fs.Int("clients", 4, "concurrent prediction clients")
	samples := fs.Int("samples", 1, "samples per request")
	requests := fs.Int("requests", 20, "requests per client")
	seed := fs.Int64("seed", 7, "synthetic data seed")
	maxBackoff := fs.Duration("max-backoff", 100*time.Millisecond, "cap for the busy-retry backoff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 || *requests < 1 || *samples < 1 {
		return errors.New("-clients, -requests and -samples must be positive")
	}

	keys, err := wire.DialKeyService(*authorityAddr)
	if err != nil {
		return err
	}
	defer keys.Close()
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{})
	if err != nil {
		return err
	}

	// One encrypted batch per client, prepared before the clock starts:
	// the load generator measures serving, not client-side encryption.
	fmt.Printf("encrypting %d batch(es) of %d sample(s)...\n", *clients, *samples)
	batches := make([]*core.EncryptedBatch, *clients)
	for c := range batches {
		if batches[c], err = syntheticBatch(eng, *features, *classes, *samples, *seed+int64(c)); err != nil {
			return err
		}
	}

	fmt.Printf("driving %d client(s) × %d request(s) × %d sample(s) against %s\n",
		*clients, *requests, *samples, *serverAddr)
	reports := make([]clientReport, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[c] = drive(*serverAddr, batches[c], *requests, *maxBackoff)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	busy := 0
	for c, r := range reports {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", c, r.err)
		}
		lats = append(lats, r.lats...)
		busy += r.busyRetries
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	total := len(lats) * *samples
	fmt.Printf("served %d samples (%d requests) in %s: %.1f samples/sec\n",
		total, len(lats), elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("request latency p50 %s p99 %s max %s; %d busy retries\n",
		lats[len(lats)/2].Round(time.Microsecond),
		lats[len(lats)*99/100].Round(time.Microsecond),
		lats[len(lats)-1].Round(time.Microsecond), busy)
	return nil
}

// drive issues back-to-back prediction requests on one connection,
// backing off and retrying when the server signals backpressure.
func drive(addr string, enc *core.EncryptedBatch, requests int, maxBackoff time.Duration) clientReport {
	var rep clientReport
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		rep.err = err
		return rep
	}
	defer conn.Close()
	for i := 0; i < requests; i++ {
		backoff := time.Millisecond
		for {
			start := time.Now()
			preds, err := wire.RequestPrediction(conn, enc)
			if errors.Is(err, wire.ErrBusy) {
				rep.busyRetries++
				time.Sleep(backoff)
				backoff = min(backoff*2, maxBackoff)
				continue
			}
			if err != nil {
				rep.err = fmt.Errorf("request %d: %w", i, err)
				return rep
			}
			if len(preds) != enc.N {
				rep.err = fmt.Errorf("request %d: %d predictions for %d samples", i, len(preds), enc.N)
				return rep
			}
			rep.lats = append(rep.lats, time.Since(start))
			break
		}
	}
	return rep
}

// syntheticBatch encrypts a deterministic (features × n) input matrix in
// the column orientation only — the one prediction reads. No labels, row
// ciphertexts, or element ciphertexts are carried, so the request frames
// stay as small as the workload allows.
func syntheticBatch(eng *securemat.Engine, features, classes, n int, seed int64) (*core.EncryptedBatch, error) {
	codec := fixedpoint.Default()
	x := make([][]float64, features)
	for i := range x {
		x[i] = make([]float64, n)
		for j := range x[i] {
			x[i][j] = float64((i*31+j*17+int(seed))%100) / 100
		}
	}
	xi, err := codec.EncodeMat(x)
	if err != nil {
		return nil, err
	}
	encX, err := eng.Encrypt(xi, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		return nil, err
	}
	return &core.EncryptedBatch{X: encX, Features: features, Classes: classes, N: n}, nil
}
