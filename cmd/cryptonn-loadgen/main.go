// Command cryptonn-loadgen measures prediction-serving throughput: it
// drives N concurrent prediction clients against a running server
// (started with -predict-listen) and prints aggregate throughput and
// latency percentiles. With several clients it exercises the server's
// cross-client batch coalescing; with -clients 1 it measures the serial
// per-connection baseline for comparison.
//
// Usage:
//
//	cryptonn-loadgen -authority 127.0.0.1:7001 -server 127.0.0.1:7003 \
//	    -features 784 -classes 10 -clients 8 -samples 1 -requests 50
//
// Connections negotiate the binary wire codec by default (-codec auto);
// -codec gob forces the legacy encoding for A/B comparison, and -sweep
// "16,256,1024" measures a whole connection-count scaling curve in one
// run. -pipeline N keeps N requests in flight per connection (binary
// codec only — the gob protocol is one-outstanding-request).
//
// Encrypted batches are prepared before the clock starts (prediction
// touches only the input ciphertexts, so batches are reusable and
// read-only) and shared from a fixed-size pool, so thousands of
// connections do not need thousands of encryptions. Requests rejected
// under server backpressure (wire.ErrBusy) back off exponentially and
// retry; retries are counted and reported.
//
// For sparse extreme-multi-label workloads (the ICD coding scenario:
// bag-of-words inputs at <5% density, hundreds of output labels, top-k
// decryption — see examples/icd and docs/SPARSE.md), this tool measures
// the serving path only; run `cryptonn-bench -exp icd` for the
// client-side sparse encryption and top-k decryption sweep.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-loadgen:", err)
		os.Exit(1)
	}
}

// clientReport aggregates one client's measurements.
type clientReport struct {
	lats        []time.Duration
	busyRetries int
	err         error
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-loadgen", flag.ContinueOnError)
	authorityAddr := fs.String("authority", "127.0.0.1:7001", "authority address")
	serverAddr := fs.String("server", "127.0.0.1:7003", "prediction server address")
	features := fs.Int("features", 784, "input feature count (must match the server's model)")
	classes := fs.Int("classes", 10, "output classes (must match the server's model)")
	clients := fs.Int("clients", 4, "concurrent prediction clients")
	samples := fs.Int("samples", 1, "samples per request")
	requests := fs.Int("requests", 20, "requests per client")
	seed := fs.Int64("seed", 7, "synthetic data seed")
	maxBackoff := fs.Duration("max-backoff", 100*time.Millisecond, "cap for the busy-retry backoff")
	codec := fs.String("codec", "auto", "wire codec: auto (negotiate binary, fall back), binary, or gob")
	pipeline := fs.Int("pipeline", 1, "in-flight requests per connection (binary codec only)")
	batchPool := fs.Int("batch-pool", 0, "distinct encrypted batches shared across clients (0 = min(clients, 8))")
	sweep := fs.String("sweep", "", "comma-separated client counts to sweep (overrides -clients)")
	topk := fs.Int("topk", 0, "drive coordinate-form top-k requests, k hits per sample (0: dense full-logit predictions)")
	sparseDensity := fs.Float64("sparse-density", 0, "non-zero input fraction for top-k requests (0 with -topk: 0.01)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 || *requests < 1 || *samples < 1 || *pipeline < 1 {
		return errors.New("-clients, -requests, -samples and -pipeline must be positive")
	}
	if *sparseDensity < 0 || *sparseDensity > 1 {
		return errors.New("-sparse-density must be in [0, 1]")
	}
	if *sparseDensity > 0 && *topk < 1 {
		return errors.New("-sparse-density drives the top-k path; set -topk too")
	}
	if *topk > 0 && *sparseDensity == 0 {
		*sparseDensity = 0.01
	}
	var counts []int
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("invalid -sweep count %q", s)
			}
			counts = append(counts, n)
		}
	} else {
		counts = []int{*clients}
	}
	switch *codec {
	case "auto", string(wire.CodecBinary), string(wire.CodecGob):
	default:
		return fmt.Errorf("unknown -codec %q", *codec)
	}
	if *pipeline > 1 && *codec == string(wire.CodecGob) {
		return errors.New("-pipeline needs the binary codec (gob is one-outstanding-request)")
	}

	keys, err := wire.DialKeyService(*authorityAddr)
	if err != nil {
		return err
	}
	defer keys.Close()
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{})
	if err != nil {
		return err
	}

	// A fixed pool of encrypted batches, prepared before the clock
	// starts and shared read-only across clients: the load generator
	// measures serving, not client-side encryption.
	maxClients := 0
	for _, n := range counts {
		maxClients = max(maxClients, n)
	}
	pool := *batchPool
	if pool <= 0 {
		pool = min(maxClients, 8)
	}
	// One requestFunc per pool slot; clients pick theirs round-robin.
	reqs := make([]requestFunc, pool)
	if *topk > 0 {
		fmt.Printf("sparse-encrypting %d batch(es) of %d sample(s) at density %.4f (top-%d)...\n",
			pool, *samples, *sparseDensity, *topk)
		k := *topk
		for c := range reqs {
			sp, err := syntheticSparseBatch(eng, *features, *classes, *samples, *sparseDensity, *seed+int64(c))
			if err != nil {
				return err
			}
			reqs[c] = func(cc *wire.ClientConn) error {
				hits, err := cc.PredictTopK(nil, sp, k, 0)
				if err != nil {
					return err
				}
				if len(hits) != sp.N {
					return fmt.Errorf("%d top-k hit lists for %d samples", len(hits), sp.N)
				}
				return nil
			}
		}
	} else {
		fmt.Printf("encrypting %d batch(es) of %d sample(s)...\n", pool, *samples)
		for c := range reqs {
			enc, err := syntheticBatch(eng, *features, *classes, *samples, *seed+int64(c))
			if err != nil {
				return err
			}
			reqs[c] = func(cc *wire.ClientConn) error {
				preds, err := cc.Predict(nil, enc, 0)
				if err != nil {
					return err
				}
				if len(preds) != enc.N {
					return fmt.Errorf("%d predictions for %d samples", len(preds), enc.N)
				}
				return nil
			}
		}
	}

	for _, n := range counts {
		if err := runOnce(*serverAddr, wire.Codec(*codec), n, *requests, *pipeline, *samples, reqs, *maxBackoff); err != nil {
			return err
		}
	}
	return nil
}

// requestFunc issues one prediction (or top-k) request over a connection
// and validates the response shape.
type requestFunc func(cc *wire.ClientConn) error

// runOnce drives one client-count measurement and prints its results.
func runOnce(addr string, codec wire.Codec, clients, requests, pipeline, samples int, reqs []requestFunc, maxBackoff time.Duration) error {
	fmt.Printf("driving %d client(s) × %d request(s) × %d sample(s) against %s (codec %s, pipeline %d)\n",
		clients, requests, samples, addr, codec, pipeline)
	reports := make([]clientReport, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[c] = drive(addr, codec, reqs[c%len(reqs)], requests, pipeline, maxBackoff)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	busy := 0
	for c, r := range reports {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", c, r.err)
		}
		lats = append(lats, r.lats...)
		busy += r.busyRetries
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	total := len(lats) * samples
	fmt.Printf("clients=%d served %d samples (%d requests) in %s: %.1f samples/sec\n",
		clients, total, len(lats), elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("request latency p50 %s p99 %s max %s; %d busy retries\n",
		lats[len(lats)/2].Round(time.Microsecond),
		lats[len(lats)*99/100].Round(time.Microsecond),
		lats[len(lats)-1].Round(time.Microsecond), busy)
	return nil
}

// dialLoad opens one measured connection with the requested codec.
func dialLoad(addr string, codec wire.Codec) (*wire.ClientConn, error) {
	if codec == "auto" || codec == "" {
		return wire.Dial(addr)
	}
	return wire.DialCodec(addr, codec)
}

// drive issues prediction requests on one connection — back-to-back, or
// `pipeline`-deep when multiplexing — backing off and retrying when the
// server signals backpressure.
func drive(addr string, codec wire.Codec, req requestFunc, requests, pipeline int, maxBackoff time.Duration) clientReport {
	var rep clientReport
	cc, err := dialLoad(addr, codec)
	if err != nil {
		rep.err = err
		return rep
	}
	defer cc.Close()
	if pipeline > 1 && cc.Codec() != wire.CodecBinary {
		rep.err = errors.New("pipelining requires the binary codec")
		return rep
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int, requests)
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < min(pipeline, requests); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				backoff := time.Millisecond
				for {
					start := time.Now()
					err := req(cc)
					if errors.Is(err, wire.ErrBusy) {
						mu.Lock()
						rep.busyRetries++
						mu.Unlock()
						time.Sleep(backoff)
						backoff = min(backoff*2, maxBackoff)
						continue
					}
					mu.Lock()
					if err != nil {
						if rep.err == nil {
							rep.err = fmt.Errorf("request %d: %w", i, err)
						}
						mu.Unlock()
						return
					}
					rep.lats = append(rep.lats, time.Since(start))
					mu.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()
	return rep
}

// syntheticBatch encrypts a deterministic (features × n) input matrix in
// the column orientation only — the one prediction reads. No labels, row
// ciphertexts, or element ciphertexts are carried, so the request frames
// stay as small as the workload allows.
func syntheticBatch(eng *securemat.Engine, features, classes, n int, seed int64) (*core.EncryptedBatch, error) {
	codec := fixedpoint.Default()
	x := make([][]float64, features)
	for i := range x {
		x[i] = make([]float64, n)
		for j := range x[i] {
			x[i][j] = float64((i*31+j*17+int(seed))%100) / 100
		}
	}
	xi, err := codec.EncodeMat(x)
	if err != nil {
		return nil, err
	}
	encX, err := eng.Encrypt(xi, securemat.EncryptOptions{SkipElems: true})
	if err != nil {
		return nil, err
	}
	return &core.EncryptedBatch{X: encX, Features: features, Classes: classes, N: n}, nil
}

// syntheticSparseBatch sparse-encrypts a deterministic (features × n)
// input matrix where roughly `density` of each column is non-zero,
// mimicking a bag-of-words workload. Only the support is encrypted and
// shipped, so frames scale with nnz rather than the feature count.
func syntheticSparseBatch(eng *securemat.Engine, features, classes, n int, density float64, seed int64) (*core.SparseBatch, error) {
	codec := fixedpoint.Default()
	nnz := max(1, int(float64(features)*density))
	x := make([][]float64, features)
	for i := range x {
		x[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for t := 0; t < nnz; t++ {
			// Deterministic pseudo-random support per column.
			i := (t*2654435761 + j*40503 + int(seed)*97) % features
			x[i][j] = float64((i*31+j*17+int(seed))%100+1) / 101
		}
	}
	xi, err := codec.EncodeMat(x)
	if err != nil {
		return nil, err
	}
	encX, err := eng.EncryptSparse(xi, securemat.EncryptOptions{})
	if err != nil {
		return nil, err
	}
	return &core.SparseBatch{X: encX, Features: features, Classes: classes, N: n}, nil
}
