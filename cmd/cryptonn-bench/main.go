// Command cryptonn-bench regenerates the paper's evaluation tables and
// figures (§IV-B) and prints them in the paper's layout.
//
// Usage:
//
//	cryptonn-bench -exp all                 # everything, scaled defaults
//	cryptonn-bench -exp fig3|fig4|fig5      # micro-benchmarks
//	cryptonn-bench -exp fig6 -arch cnn      # accuracy-parity curves
//	cryptonn-bench -exp table3              # Table III
//	cryptonn-bench -exp comm                # §IV-B2 key traffic
//	cryptonn-bench -paper                   # paper-scale parameters
//	                                          (256-bit group, 2k–10k
//	                                          elements; slow)
//
// Experiments are scaled down by default so the suite completes in
// minutes; -paper switches to the publication parameters. EXPERIMENTS.md
// records the shape comparison against the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cryptonn/internal/experiments"
	"cryptonn/internal/group"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all, fig3, fig4, fig5, fig6, table3, comm, ablation, icd")
	arch := fs.String("arch", "mlp", "fig6/table3 architecture: mlp or cnn")
	etaDensity := fs.String("eta-density", "0.005,0.01,0.05", "icd: comma-separated input densities to sweep")
	topk := fs.Int("topk", 10, "icd: logits decrypted per sample by the top-k head")
	paper := fs.Bool("paper", false, "use the paper's parameters (256-bit group, full sweeps; slow)")
	bits := fs.Int("bits", 0, "override group modulus bits (default: 64, or 256 with -paper)")
	par := fs.Int("par", -1, "decryption workers (-1 = NumCPU)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	pool := fs.Int("pool", 2, "fig6/table3 input down-pooling factor (1 = paper's 28×28; ignored with -paper)")
	hidden := fs.Int("hidden", 16, "fig6/table3 MLP hidden width (paper: 32; ignored with -paper)")
	tableCache := fs.String("table-cache", "", "persist precomputed group tables in this directory (warm starts skip table derivation)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tableCache != "" {
		tc, err := group.OpenTableCache(*tableCache)
		if err != nil {
			return err
		}
		group.SetTableCache(tc)
		defer func() { fmt.Fprintf(os.Stderr, "table cache: %s\n", tc.Stats()) }()
	}

	groupBits := group.TestBits
	if *paper {
		groupBits = group.PaperBits
	}
	if *bits != 0 {
		groupBits = *bits
	}

	run := func(name string, fn func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		fmt.Printf("=== %s ===\n", strings.ToUpper(name))
		return fn()
	}

	if err := run("fig3", func() error {
		return microExp(experiments.Fig3, "element-wise addition (Fig. 3)", groupBits, *paper, *par, *seed)
	}); err != nil {
		return err
	}
	if err := run("fig4", func() error {
		return microExp(experiments.Fig4, "element-wise multiplication (Fig. 4)", groupBits, *paper, *par, *seed)
	}); err != nil {
		return err
	}
	if err := run("fig5", func() error { return dotExp(groupBits, *paper, *par, *seed) }); err != nil {
		return err
	}
	if err := run("fig6", func() error { return fig6Exp(groupBits, *paper, *arch, *par, *seed, *pool, *hidden) }); err != nil {
		return err
	}
	if err := run("table3", func() error { return table3Exp(groupBits, *paper, *arch, *par, *seed, *pool, *hidden) }); err != nil {
		return err
	}
	if err := run("comm", func() error { return commExp(groupBits, *seed) }); err != nil {
		return err
	}
	if err := run("ablation", func() error { return ablationExp(groupBits, *par, *seed) }); err != nil {
		return err
	}
	if err := run("icd", func() error {
		return icdExp(groupBits, *paper, *etaDensity, *topk, *par, *seed)
	}); err != nil {
		return err
	}
	return nil
}

// icdExp prints the sparse extreme multi-label sweep: encryption and
// decryption cost per input density, sparse path vs dense, top-k head vs
// full solve.
func icdExp(bits int, paper bool, densities string, topk, par int, seed int64) error {
	var ds []float64
	for _, s := range strings.Split(densities, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad -eta-density %q: %w", s, err)
		}
		ds = append(ds, d)
	}
	cfg := experiments.ICDConfig{
		Bits:        bits,
		Densities:   ds,
		TopK:        topk,
		Parallelism: par,
		Seed:        seed,
	}
	if paper {
		// The ICD-scale shape: 10k vocabulary, 5k codes. The dense
		// reference at this η dominates wall-clock, so only the sparse
		// path is measured; drop -paper for the side-by-side comparison.
		cfg.Eta = 10000
		cfg.Labels = 5000
		cfg.SkipDense = true
	}
	points, err := experiments.ICD(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("encrypted ICD coding (sparse engine, top-%d head)\n", topk)
	fmt.Printf("%-9s %7s %13s %13s %12s %13s %13s %12s\n",
		"density", "nnz", "enc-sparse", "enc-dense", "keyderive", "topk", "full-solve", "dlogs")
	for _, p := range points {
		encDense, full := "-", "-"
		if p.EncryptDense > 0 {
			encDense = p.EncryptDense.Round(10e3).String()
		}
		if p.FullCompute > 0 {
			full = p.FullCompute.Round(10e3).String()
		}
		fmt.Printf("%-9g %7d %13s %13s %12s %13s %13s %12s\n",
			p.Density, p.Nnz, p.EncryptSparse.Round(10e3), encDense,
			p.KeyDerive.Round(10e3), p.TopKCompute.Round(10e3), full,
			fmt.Sprintf("%d/%d", p.TopKSolved, p.TopKSolved+p.TopKSkipped))
	}
	fmt.Println()
	return nil
}

// ablationExp prints the design-choice ablations (DESIGN.md §3): the
// dot-product-vs-element-wise composition the paper separates "due to
// efficiency considerations", the parallelization sweep, and the
// security-parameter cost curve.
func ablationExp(bits, par int, seed int64) error {
	dot, err := experiments.AblationDotComposition(experiments.DotCompositionConfig{Bits: bits, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("dot-product composition (§III-C remark)")
	fmt.Printf("%-28s %12s %10s\n", "path", "time", "keys")
	fmt.Printf("%-28s %12s %10d\n", "FEIP dot-product", dot.FEIPTime.Round(10e3), dot.FEIPKeys)
	fmt.Printf("%-28s %12s %10d\n", "FEBO mul + plaintext sum", dot.FEBOTime.Round(10e3), dot.FEBOKeys)
	fmt.Printf("dedicated path is %.1fx faster with %dx fewer keys\n\n",
		dot.Speedup, dot.FEBOKeys/dot.FEIPKeys)

	workers := []int{1, 2, 4, 8}
	if par > 0 {
		workers = []int{1, par}
	}
	parPts, err := experiments.AblationParallelism(experiments.ParallelismConfig{Bits: bits, Workers: workers, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("decryption parallelism sweep")
	fmt.Printf("%-10s %12s %10s\n", "workers", "time", "speedup")
	for _, p := range parPts {
		fmt.Printf("%-10d %12s %9.2fx\n", p.Workers, p.Time.Round(10e3), p.Speedup)
	}
	fmt.Println()

	bitPts, err := experiments.AblationGroupBits(experiments.GroupBitsConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("security-parameter cost (paper fixes 256 bits)")
	fmt.Printf("%-8s %12s %12s %12s\n", "bits", "encrypt", "keyderive", "compute")
	for _, p := range bitPts {
		fmt.Printf("%-8d %12s %12s %12s\n", p.Bits,
			p.Encrypt.Round(10e3), p.KeyDerive.Round(10e3), p.Compute.Round(10e3))
	}
	fmt.Println()

	paths, err := experiments.AblationPredictionPaths(experiments.PredictPathsConfig{
		Bits: bits, Parallelism: par, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("prediction paths (§III-D privacy settings, 8-sample batch)")
	fmt.Printf("%-34s %12s\n", "path", "time")
	fmt.Printf("%-34s %12s\n", "plaintext (no privacy)", paths.Plain.Round(1e3))
	fmt.Printf("%-34s %12s\n", "FE (server learns class)", paths.FE.Round(10e3))
	fmt.Printf("%-34s %12s\n", "HE (server learns nothing)", paths.HE.Round(10e3))
	fmt.Printf("all paths agree on every class: %v\n\n", paths.Agree)
	return nil
}

func microExp(fn func(experiments.MicroConfig) ([]experiments.MicroPoint, error), title string, bits int, paper bool, par int, seed int64) error {
	cfg := experiments.MicroConfig{Bits: bits, Parallelism: par, Seed: seed}
	if paper {
		cfg.Sizes = []int{2000, 4000, 6000, 8000, 10000}
	}
	points, err := fn(cfg)
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Printf("%-10s %-14s %12s %12s %14s %14s\n",
		"#elements", "range", "encrypt(a)", "keyderive(b)", "compute-seq(c)", "compute-par(d)")
	for _, p := range points {
		fmt.Printf("%-10d %-14s %12s %12s %14s %14s\n",
			p.Size, p.Range, p.Encrypt.Round(10e3), p.KeyDerive.Round(10e3),
			p.ComputeSeq.Round(10e3), p.ComputePar.Round(10e3))
	}
	fmt.Println()
	return nil
}

func dotExp(bits int, paper bool, par int, seed int64) error {
	cfg := experiments.DotConfig{Bits: bits, Parallelism: par, Seed: seed}
	if paper {
		cfg.Counts = []int{2000, 4000, 6000, 8000, 10000}
	}
	points, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Println("dot-product (Fig. 5)")
	fmt.Printf("%-9s %-5s %-10s %12s %12s %14s %14s\n",
		"#vectors", "len", "range", "encrypt(a)", "keyderive(b)", "compute-seq(c)", "compute-par(d)")
	for _, p := range points {
		fmt.Printf("%-9d %-5d %-10s %12s %12s %14s %14s\n",
			p.Count, p.Length, p.Range, p.Encrypt.Round(10e3), p.KeyDerive.Round(10e3),
			p.ComputeSeq.Round(10e3), p.ComputePar.Round(10e3))
	}
	fmt.Println()
	return nil
}

func trainConfig(bits int, paper bool, arch string, par int, seed int64, pool, hidden int) experiments.TrainConfig {
	cfg := experiments.TrainConfig{
		Bits:        bits,
		Arch:        experiments.Arch(arch),
		Parallelism: par,
		Seed:        seed,
		Pool:        pool,
		Hidden:      hidden,
	}
	if paper {
		cfg.TrainSamples = 60000
		cfg.TestSamples = 10000
		cfg.BatchSize = 64
		cfg.Epochs = 2
		cfg.TickBatches = 50
		cfg.Pool = 1
		cfg.Hidden = 32
	} else {
		// Scaled defaults sized for a single-core run in minutes.
		cfg.TrainSamples = 100
		cfg.TestSamples = 60
		cfg.BatchSize = 10
		cfg.Epochs = 2
		cfg.TickBatches = 2
		if cfg.Arch == experiments.ArchCNN {
			// Secure convolution is the slow path; keep the run modest.
			cfg.TrainSamples = 32
			cfg.TestSamples = 32
			cfg.BatchSize = 8
			cfg.Epochs = 1
			cfg.TickBatches = 1
		}
	}
	return cfg
}

func fig6Exp(bits int, paper bool, arch string, par int, seed int64, pool, hidden int) error {
	points, err := experiments.Fig6(trainConfig(bits, paper, arch, par, seed, pool, hidden))
	if err != nil {
		return err
	}
	fmt.Printf("average batch accuracy, plaintext baseline vs CryptoNN (%s) (Fig. 6)\n", arch)
	fmt.Printf("%-6s %12s %12s\n", "tick", "baseline", "CryptoNN")
	for _, p := range points {
		fmt.Printf("%-6d %12.4f %12.4f\n", p.Tick, p.Plain, p.CryptoNN)
	}
	fmt.Println()
	return nil
}

func table3Exp(bits int, paper bool, arch string, par int, seed int64, pool, hidden int) error {
	res, err := experiments.Table3(trainConfig(bits, paper, arch, par, seed, pool, hidden))
	if err != nil {
		return err
	}
	fmt.Printf("accuracy and training time (%s) (Table III)\n", arch)
	fmt.Printf("%-12s", "model")
	for e := range res.PlainAcc {
		fmt.Printf(" epoch %d (acc)", e+1)
	}
	fmt.Printf(" %14s\n", "training time")
	fmt.Printf("%-12s", "baseline")
	for _, a := range res.PlainAcc {
		fmt.Printf(" %12.2f%%", a*100)
	}
	fmt.Printf(" %14s\n", res.PlainTime.Round(1e6))
	fmt.Printf("%-12s", "CryptoNN")
	for _, a := range res.CryptoAcc {
		fmt.Printf(" %12.2f%%", a*100)
	}
	fmt.Printf(" %14s\n", res.CryptoTime.Round(1e6))
	fmt.Printf("overhead: %.1fx (paper: 57h/4h ≈ 14x); client encryption: %s\n\n",
		res.Overhead, res.EncryptTime.Round(1e6))
	return nil
}

func commExp(bits int, seed int64) error {
	res, err := experiments.CommOverhead(experiments.CommConfig{Bits: bits, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("key-traffic per iteration (§IV-B2)")
	fmt.Printf("formula   : k·n = %d weight scalars, k = %d keys (secure feed-forward)\n",
		res.PredictedScalars, res.PredictedKeys)
	fmt.Printf("measured  : %d scalars, %d keys (secure feed-forward)\n",
		res.MeasuredForwardScalars, res.MeasuredForwardKeys)
	fmt.Printf("full iter : %d scalars, %d IP keys, %d BO keys (adds gradient + label steps)\n\n",
		res.TotalScalars, res.TotalIPKeys, res.TotalBOKeys)
	return nil
}
