package main

import "testing"

func TestRunCommExperiment(t *testing.T) {
	if err := run([]string{"-exp", "comm"}); err != nil {
		t.Fatalf("run -exp comm: %v", err)
	}
}

func TestRunAblationExperiment(t *testing.T) {
	if err := run([]string{"-exp", "ablation", "-par", "2"}); err != nil {
		t.Fatalf("run -exp ablation: %v", err)
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// An unmatched -exp name selects nothing; the harness runs cleanly.
	if err := run([]string{"-exp", "does-not-exist"}); err != nil {
		t.Fatalf("run with unmatched experiment: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadArchFails(t *testing.T) {
	if err := run([]string{"-exp", "fig6", "-arch", "transformer", "-pool", "4", "-hidden", "4"}); err == nil {
		t.Error("unknown architecture accepted")
	}
}
