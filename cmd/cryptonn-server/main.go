// Command cryptonn-server is the training server of Fig. 1: it collects
// encrypted batches from distributed clients over TCP, trains a neural
// network on them through the CryptoNN framework (requesting
// function-derived keys from the authority), and can then serve FE-based
// predictions over encrypted inputs (§III-D).
//
// Usage:
//
//	cryptonn-server -listen :7002 -authority 127.0.0.1:7001 \
//	    -features 784 -classes 10 -hidden 32 -epochs 2 -lr 0.3 \
//	    -expect 2
//
// Pass a comma-separated node list to -authority to request keys from a
// threshold authority cluster instead of a single authority.
//
// The server waits for -expect client submissions, trains, prints
// per-epoch progress, and exits — unless -predict-listen is given, in
// which case it then serves prediction requests on that address until
// interrupted. The trained parameters stay on the server (they are
// plaintext by the paper's design).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"cryptonn/internal/group"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/service"
	"cryptonn/internal/wire"
)

// dialKeys connects to a single authority (with a connection pool) or,
// for a comma-separated list, a threshold authority cluster.
func dialKeys(addrs string, pool int, logger *log.Logger) (interface {
	securemat.KeyService
	Close() error
}, error) {
	list := strings.Split(addrs, ",")
	for i := range list {
		list[i] = strings.TrimSpace(list[i])
	}
	if len(list) == 1 {
		return wire.NewKeyServicePool(list[0], pool)
	}
	q, err := wire.DialQuorumKeyService(list, wire.QuorumOptions{Logger: logger})
	if err != nil {
		return nil, err
	}
	t, n := q.Threshold()
	logger.Printf("threshold authority cluster: %d nodes, quorum T=%d", n, t)
	return q, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-server:", err)
		os.Exit(1)
	}
}

// parseBuckets parses the -sparse-buckets comma list.
func parseBuckets(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -sparse-buckets entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7002", "listen address for client submissions")
	authorityAddr := fs.String("authority", "127.0.0.1:7001", "authority address, or comma-separated cluster node list")
	features := fs.Int("features", 784, "input feature count")
	classes := fs.Int("classes", 10, "output classes")
	hidden := fs.Int("hidden", 32, "hidden units in the first (secure) layer (0: bias-free linear model, enables top-k serving)")
	epochs := fs.Int("epochs", 2, "training epochs")
	lr := fs.Float64("lr", 0.3, "SGD learning rate")
	expect := fs.Int("expect", 1, "number of client submissions to wait for")
	par := fs.Int("par", -1, "decryption workers (-1 = NumCPU)")
	pool := fs.Int("pool", 4, "authority connection pool size")
	seed := fs.Int64("seed", 1, "weight initialisation seed")
	predictListen := fs.String("predict-listen", "", "after training, serve predictions on this address (empty: exit)")
	coalesceSamples := fs.Int("coalesce-samples", 0, "max samples per coalesced prediction evaluation (0 = default)")
	coalesceDelay := fs.Duration("coalesce-delay", 0, "how long the first prediction request of a round waits for stragglers (0 = greedy)")
	predictQueue := fs.Int("predict-queue", 0, "prediction dispatch queue bound; full queue rejects with a retryable error (0 = default)")
	sparseBuckets := fs.String("sparse-buckets", "", "comma-separated support-padding size classes for coordinate-form key requests (empty: no padding)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty: disabled)")
	savePath := fs.String("save", "", "write the trained model checkpoint to this file")
	tableCache := fs.String("table-cache", "", "persist precomputed group tables in this directory (warm starts skip table derivation)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "server: ", log.LstdFlags)
	if *tableCache != "" {
		tc, err := group.OpenTableCache(*tableCache)
		if err != nil {
			return err
		}
		group.SetTableCache(tc)
		logger.Printf("table cache: %s", tc.Dir())
		defer func() { logger.Printf("table cache: %s", tc.Stats()) }()
	}
	keys, err := dialKeys(*authorityAddr, *pool, logger)
	if err != nil {
		return err
	}
	defer func() {
		if err := keys.Close(); err != nil {
			logger.Printf("closing key pool: %v", err)
		}
	}()

	buckets, err := parseBuckets(*sparseBuckets)
	if err != nil {
		return err
	}
	cfg := service.Config{
		Features:      *features,
		Classes:       *classes,
		Epochs:        *epochs,
		LR:            *lr,
		Expect:        *expect,
		Parallelism:   *par,
		Seed:          *seed,
		ComputeLoss:   true,
		SparseBuckets: buckets,
		Serving: wire.DispatcherOptions{
			MaxCoalescedSamples: *coalesceSamples,
			MaxDelay:            *coalesceDelay,
			MaxQueue:            *predictQueue,
		},
		Logger: logger,
	}
	if *hidden == 0 {
		cfg.Linear = true
		logger.Printf("linear model: bias-free %dx%d scorer, top-k serving enabled", *classes, *features)
	} else {
		cfg.Hidden = []int{*hidden}
	}
	srv, err := service.New(keys, cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *metricsAddr != "" {
		// The prediction source resolves lazily, so mounting before
		// training is fine — counters read zero until serving starts.
		// The engine contributes sparsity/top-k counters, and a quorum
		// key service contributes its fan-out health counters.
		sources := []wire.MetricsSource{srv.PredictionMetrics(), srv.EngineMetrics()}
		if q, ok := keys.(wire.MetricsSource); ok {
			sources = append(sources, q)
		}
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", wire.MetricsHandler(sources...))
		ms := &http.Server{Handler: mux}
		go func() {
			if err := ms.Serve(ml); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics server: %v", err)
			}
		}()
		defer ms.Close() //nolint:errcheck // shutdown is best-effort
		logger.Printf("serving /metrics on %s", ml.Addr())
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	report, err := srv.Run(ctx, l)
	if err != nil {
		return err
	}
	logger.Printf("trained on %d batches from %d client(s): collect %s, train %s",
		report.Batches, report.Clients,
		report.CollectTime.Round(time.Millisecond), report.TrainTime.Round(time.Millisecond))
	for e, loss := range report.EpochLoss {
		logger.Printf("epoch %d: avg secure loss %.4f", e+1, loss)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := nn.Save(f, srv.Model()); err != nil {
			_ = f.Close()
			return fmt.Errorf("saving model: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Printf("model checkpoint written to %s", *savePath)
	}

	if *predictListen == "" {
		return nil
	}
	pl, err := net.Listen("tcp", *predictListen)
	if err != nil {
		return err
	}
	return srv.ServePredictions(ctx, pl)
}
