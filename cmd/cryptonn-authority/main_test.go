package main

import (
	"net"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRejectsUnknownGroupSize(t *testing.T) {
	if err := run([]string{"-bits", "99"}); err == nil {
		t.Error("non-embedded group size accepted")
	}
}

func TestRunRejectsBusyAddress(t *testing.T) {
	// Occupy a port so the authority's listen fails immediately.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := run([]string{"-listen", l.Addr().String(), "-bits", "64"}); err == nil {
		t.Error("listen on an occupied port succeeded")
	}
}
