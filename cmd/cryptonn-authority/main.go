// Command cryptonn-authority runs the trusted key authority of the
// CryptoNN architecture (Fig. 1) as a TCP service: it generates and holds
// the master secret keys, distributes public keys, and issues
// function-derived keys for the permitted function set.
//
// Usage:
//
//	cryptonn-authority -listen :7001 -bits 256
//
// The permitted set defaults to everything CryptoNN training needs
// (dot-product and the four basic operations); -deny-div etc. narrow it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"cryptonn/internal/authority"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
	"cryptonn/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "cryptonn-authority:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-authority", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "listen address")
	bits := fs.Int("bits", group.PaperBits, "group modulus bits (embedded sizes: 64,128,192,256,512)")
	generate := fs.Bool("generate", false, "generate a fresh group instead of the embedded one")
	denyDot := fs.Bool("deny-dot", false, "refuse dot-product keys")
	denyDiv := fs.Bool("deny-div", false, "refuse division keys")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var params *group.Params
	var err error
	if *generate {
		log.Printf("generating %d-bit safe-prime group (this can take a while)...", *bits)
		params, err = group.Generate(*bits, nil)
	} else {
		params, err = group.Embedded(*bits)
	}
	if err != nil {
		return err
	}

	policy := authority.AllowAll()
	policy.DotProduct = !*denyDot
	if *denyDiv {
		policy.BasicOps[febo.OpDiv] = false
	}
	auth, err := authority.New(params, policy)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "authority: ", log.LstdFlags)
	srv, err := wire.NewAuthorityServer(auth, logger)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Printf("serving %s keys on %s", params, l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Printf("shutting down: issued %+v", auth.Stats())
	}()
	return srv.Serve(ctx, l)
}
