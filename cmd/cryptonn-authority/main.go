// Command cryptonn-authority runs the trusted key authority of the
// CryptoNN architecture (Fig. 1) as a TCP service: it generates and holds
// the master secret keys, distributes public keys, and issues
// function-derived keys for the permitted function set.
//
// Usage:
//
//	cryptonn-authority -listen :7001 -bits 256
//
// The permitted set defaults to everything CryptoNN training needs
// (dot-product and the four basic operations); -deny-div etc. narrow it.
//
// # Threshold cluster mode
//
// Instead of one process holding whole master secrets, the authority can
// run as an N-of-T cluster: a one-off setup ceremony shards the secrets
// into per-node share files, and each node process then serves partial
// keys that only a T-quorum of nodes can combine (see wire.QuorumKeyService
// on the client side). No process ever holds a whole master secret after
// the ceremony.
//
//	cryptonn-authority -setup-nodes 5 -setup-threshold 3 \
//	    -setup-etas 784,32,10 -setup-out ./cluster    # ceremony, writes node-*.share
//	cryptonn-authority -share ./cluster/node-1.share -listen :7001
//	cryptonn-authority -share ./cluster/node-2.share -listen :7002
//	...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"cryptonn/internal/authority"
	"cryptonn/internal/febo"
	"cryptonn/internal/group"
	"cryptonn/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "cryptonn-authority:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-authority", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "listen address")
	bits := fs.Int("bits", group.PaperBits, "group modulus bits (embedded sizes: 64,128,192,256,512)")
	generate := fs.Bool("generate", false, "generate a fresh group instead of the embedded one")
	denyDot := fs.Bool("deny-dot", false, "refuse dot-product keys")
	denyDiv := fs.Bool("deny-div", false, "refuse division keys")
	maxEta := fs.Int("max-eta", 0, "cap on client-supplied dimension/batch size (0 = default, <0 = unlimited)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty: disabled)")
	share := fs.String("share", "", "cluster-node mode: serve partial keys from this share file")
	setupNodes := fs.Int("setup-nodes", 0, "setup ceremony: shard the master secrets across N nodes")
	setupThreshold := fs.Int("setup-threshold", 0, "setup ceremony: quorum size T (partial keys from any T nodes combine)")
	setupEtas := fs.String("setup-etas", "", "setup ceremony: comma-separated FEIP dimensions to provision (e.g. layer widths)")
	setupOut := fs.String("setup-out", ".", "setup ceremony: directory for node-<i>.share files")
	tableCache := fs.String("table-cache", "", "persist precomputed group tables in this directory (warm starts skip table derivation)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tableCache != "" {
		tc, err := group.OpenTableCache(*tableCache)
		if err != nil {
			return err
		}
		group.SetTableCache(tc)
		defer func() { log.Printf("authority: table cache: %s", tc.Stats()) }()
	}
	if *setupNodes > 0 {
		return runSetup(*bits, *generate, *setupNodes, *setupThreshold, *setupEtas, *setupOut)
	}
	opts := wire.AuthorityServerOptions{MaxEta: *maxEta}
	logger := log.New(os.Stderr, "authority: ", log.LstdFlags)

	policy := authority.AllowAll()
	policy.DotProduct = !*denyDot
	if *denyDiv {
		policy.BasicOps[febo.OpDiv] = false
	}

	var srv *wire.AuthorityServer
	var stats func() string
	if *share != "" {
		f, err := os.Open(*share)
		if err != nil {
			return err
		}
		sf, err := authority.ReadNodeShareFile(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		node, err := authority.LoadNode(sf, policy)
		if err != nil {
			return err
		}
		srv, err = wire.NewNodeServer(node, logger, opts)
		if err != nil {
			return err
		}
		logger.Printf("cluster node %d of %d (quorum T=%d), %s", node.Index(), node.ClusterSize(), node.Threshold(), node.Params())
		stats = func() string { return fmt.Sprintf("%+v", node.Stats()) }
	} else {
		params, err := loadGroup(*bits, *generate)
		if err != nil {
			return err
		}
		auth, err := authority.New(params, policy)
		if err != nil {
			return err
		}
		srv, err = wire.NewAuthorityServerOpts(auth, logger, opts)
		if err != nil {
			return err
		}
		logger.Printf("serving %s keys", params)
		stats = func() string { return fmt.Sprintf("%+v", auth.Stats()) }
	}

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", wire.MetricsHandler(srv))
		ms := &http.Server{Handler: mux}
		go func() {
			if err := ms.Serve(ml); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics server: %v", err)
			}
		}()
		defer ms.Close() //nolint:errcheck // shutdown is best-effort
		logger.Printf("serving /metrics on %s", ml.Addr())
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Printf("shutting down: issued %s, incidents %+v", stats(), srv.Stats())
	}()
	return srv.Serve(ctx, l)
}

func loadGroup(bits int, generate bool) (*group.Params, error) {
	if generate {
		log.Printf("generating %d-bit safe-prime group (this can take a while)...", bits)
		return group.Generate(bits, nil)
	}
	return group.Embedded(bits)
}

// runSetup is the dealer ceremony: it runs the distributed key generation
// in one short-lived process and writes one share file per node. The
// in-memory cluster state (and with it any path to the whole secrets) is
// gone when the process exits; afterwards only T-subsets of the share
// files can derive keys.
func runSetup(bits int, generate bool, n, t int, etasCSV, outDir string) error {
	if t <= 0 {
		return errors.New("setup: -setup-threshold must be at least 1")
	}
	var etas []int
	if etasCSV != "" {
		for _, s := range strings.Split(etasCSV, ",") {
			eta, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || eta <= 0 {
				return fmt.Errorf("setup: invalid FEIP dimension %q", s)
			}
			etas = append(etas, eta)
		}
	}
	params, err := loadGroup(bits, generate)
	if err != nil {
		return err
	}
	cluster, _, err := authority.NewCluster(params, authority.AllowAll(), t, n, nil)
	if err != nil {
		return err
	}
	for j := 1; j <= n; j++ {
		f, err := cluster.ShareFile(j, etas)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, fmt.Sprintf("node-%d.share", j))
		w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			return err
		}
		if err := f.Encode(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		log.Printf("setup: wrote %s", path)
	}
	log.Printf("setup: %d-of-%d cluster over %s, %d FEIP dimension(s) provisioned", t, n, params, len(etas))
	return nil
}
