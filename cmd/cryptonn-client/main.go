// Command cryptonn-client is a data owner of Fig. 1: it loads (or
// synthesizes) labelled data, encrypts it under the authority's public
// keys with the paper's pre-processing (fixed-point encoding, one-hot +
// label mapping), and submits the ciphertext batches to a training server.
//
// Usage:
//
//	cryptonn-client -authority 127.0.0.1:7001 -server 127.0.0.1:7002 \
//	    -samples 64 -batch 16 -label-key clinic-shared-secret
//
// A comma-separated -authority list selects threshold-cluster mode: the
// client derives keys from any T of the listed nodes (partial keys,
// Lagrange-combined and verified client-side) and tolerates N−T node
// failures transparently.
//
// Nothing leaving this process is plaintext: the server receives only
// FEIP/FEBO ciphertexts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cryptonn/internal/core"
	"cryptonn/internal/mnist"
	"cryptonn/internal/securemat"
	"cryptonn/internal/wire"
)

// dialKeys connects to a single authority or, for a comma-separated list,
// a threshold authority cluster.
func dialKeys(addrs string, logger *log.Logger) (interface {
	securemat.KeyService
	Close() error
}, error) {
	list := strings.Split(addrs, ",")
	for i := range list {
		list[i] = strings.TrimSpace(list[i])
	}
	if len(list) == 1 {
		return wire.DialKeyService(list[0])
	}
	q, err := wire.DialQuorumKeyService(list, wire.QuorumOptions{Logger: logger})
	if err != nil {
		return nil, err
	}
	t, n := q.Threshold()
	logger.Printf("threshold authority cluster: %d nodes, quorum T=%d", n, t)
	return q, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptonn-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptonn-client", flag.ContinueOnError)
	authorityAddr := fs.String("authority", "127.0.0.1:7001", "authority address, or comma-separated cluster node addresses")
	serverAddr := fs.String("server", "127.0.0.1:7002", "training server address")
	samples := fs.Int("samples", 64, "number of samples to contribute")
	batch := fs.Int("batch", 16, "batch size")
	labelKey := fs.String("label-key", "", "shared secret for label mapping (empty = no masking)")
	seed := fs.Int64("seed", 1, "data seed (synthetic fallback; set MNIST_DIR for real data)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "client: ", log.LstdFlags)
	keys, err := dialKeys(*authorityAddr, logger)
	if err != nil {
		return err
	}
	defer func() {
		if err := keys.Close(); err != nil {
			logger.Printf("closing key service: %v", err)
		}
	}()

	var lm *core.LabelMap
	if *labelKey != "" {
		lm, err = core.NewLabelMap(mnist.Classes, []byte(*labelKey))
		if err != nil {
			return err
		}
		logger.Printf("label mapping enabled")
	}
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{})
	if err != nil {
		return err
	}
	client, err := core.NewClient(eng, nil, lm)
	if err != nil {
		return err
	}

	data, real, err := mnist.Load(true, *samples, *seed)
	if err != nil {
		return err
	}
	source := "synthetic"
	if real {
		source = "MNIST_DIR"
	}
	logger.Printf("loaded %d samples (%s); encrypting in batches of %d", data.N(), source, *batch)

	start := time.Now()
	var batches []*core.EncryptedBatch
	for from := 0; from+*batch <= data.N(); from += *batch {
		x, y, err := data.Batch(from, from+*batch)
		if err != nil {
			return err
		}
		enc, err := client.EncryptBatch(x, y)
		if err != nil {
			return fmt.Errorf("encrypting batch at %d: %w", from, err)
		}
		batches = append(batches, enc)
	}
	logger.Printf("encrypted %d batches in %s", len(batches), time.Since(start).Round(time.Millisecond))

	// wire.Dial negotiates the binary codec and falls back to gob
	// against a pre-codec server.
	conn, err := wire.Dial(*serverAddr)
	if err != nil {
		return err
	}
	defer func() {
		if err := conn.Close(); err != nil {
			logger.Printf("closing server connection: %v", err)
		}
	}()
	if err := conn.SubmitBatches(batches); err != nil {
		return err
	}
	logger.Printf("submitted %d encrypted batches to %s (%s codec)", len(batches), *serverAddr, conn.Codec())
	return nil
}
