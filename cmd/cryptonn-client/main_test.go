package main

import "testing"

func TestRunFailsWithoutAuthority(t *testing.T) {
	if err := run([]string{"-authority", "127.0.0.1:1", "-server", "127.0.0.1:1"}); err == nil {
		t.Error("run succeeded with no authority listening")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
