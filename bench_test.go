// Package cryptonn's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation section (§IV-B).
//
//	BenchmarkFig3*   element-wise addition, panels a–d
//	BenchmarkFig4*   element-wise multiplication, panels a–d
//	BenchmarkFig5*   dot-product, panels a–d
//	BenchmarkFig6*   one secure vs plaintext training step (the unit of
//	                 the accuracy/time curves)
//	BenchmarkTable3* one full epoch, secure vs plaintext
//	BenchmarkComm    §IV-B2 per-iteration key traffic (reported as
//	                 scalars/op and keys/op metrics)
//
// The benchmarks measure the same code paths cmd/cryptonn-bench times,
// but under testing.B so -benchmem allocation profiles are available.
// Sizes are scaled for a laptop; EXPERIMENTS.md maps them back to the
// paper's sweeps.
package cryptonn

import (
	"fmt"
	"math/rand"
	"testing"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/experiments"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/mnist"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

// benchAuthority builds an in-process authority over the embedded 64-bit
// test group (the paper's 256-bit setting is reachable via
// group.Embedded(group.PaperBits) but multiplies every exponentiation
// cost without changing any shape).
func benchAuthority(b *testing.B) *authority.Authority {
	b.Helper()
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		b.Fatal(err)
	}
	return auth
}

func benchSolver(b *testing.B, bound int64) *dlog.Solver {
	b.Helper()
	solver, err := dlog.NewSolver(group.TestParams(), bound)
	if err != nil {
		b.Fatal(err)
	}
	return solver
}

// benchEngine builds a secure compute session over a fresh authority. The
// dot-key cache is disabled so the key-derivation panels keep measuring
// derivation (the cache's hit path has its own benchmark in securemat).
func benchEngine(b *testing.B, solver *dlog.Solver) *securemat.Engine {
	b.Helper()
	eng, err := securemat.NewEngine(benchAuthority(b), securemat.EngineOptions{Solver: solver, DotKeyCache: -1})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func randMat(rng *rand.Rand, rows, cols int, lo, hi int64) [][]int64 {
	m := make([][]int64, rows)
	for i := range m {
		m[i] = make([]int64, cols)
		for j := range m[i] {
			m[i][j] = lo + rng.Int63n(hi-lo+1)
		}
	}
	return m
}

// --- Fig. 3 / Fig. 4: element-wise micro-benchmarks -------------------

// elementwisePanels runs the four panels of Fig. 3 (add) or Fig. 4 (mul)
// at a fixed element count for each value range of the figure legends.
func elementwisePanels(b *testing.B, f securemat.Function) {
	const size = 200 // elements per op (the paper's x-axis, scaled)
	ranges := []experiments.ValueRange{{Lo: -10, Hi: 10}, {Lo: -100, Hi: 100}, {Lo: -1000, Hi: 1000}}
	for _, r := range ranges {
		bound := 2 * r.Hi
		if f == securemat.ElementwiseMul {
			bound = r.Hi*r.Hi + 1
		}
		eng := benchEngine(b, benchSolver(b, bound))
		rng := rand.New(rand.NewSource(7))
		x := randMat(rng, 1, size, r.Lo, r.Hi)
		y := randMat(rng, 1, size, r.Lo, r.Hi)

		enc, err := eng.Encrypt(x, securemat.EncryptOptions{})
		if err != nil {
			b.Fatal(err)
		}
		keys, err := eng.ElementwiseKeys(enc, f, y)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("a_encrypt/range=%s", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Encrypt(x, securemat.EncryptOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("b_keyderive/range=%s", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ElementwiseKeys(enc, f, y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("c_compute_seq/range=%s", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureElementwise(enc, keys, f, y,
					securemat.ComputeOptions{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("d_compute_par/range=%s", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureElementwise(enc, keys, f, y,
					securemat.ComputeOptions{Parallelism: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3 regenerates the element-wise addition panels (Fig. 3a–d).
func BenchmarkFig3(b *testing.B) { elementwisePanels(b, securemat.ElementwiseAdd) }

// BenchmarkFig4 regenerates the element-wise multiplication panels
// (Fig. 4a–d). Multiplication's discrete-log range grows with the square
// of the value range — the reason the paper's Fig. 4c is minutes where
// Fig. 3c is seconds.
func BenchmarkFig4(b *testing.B) { elementwisePanels(b, securemat.ElementwiseMul) }

// BenchmarkFig5 regenerates the dot-product panels (Fig. 5a–d) for the
// paper's vector lengths l ∈ {10, 100} and value ranges.
func BenchmarkFig5(b *testing.B) {
	const count = 50 // vectors per op
	type cfg struct {
		l int
		r experiments.ValueRange
	}
	cases := []cfg{
		{10, experiments.ValueRange{Lo: 1, Hi: 10}},
		{10, experiments.ValueRange{Lo: 1, Hi: 100}},
		{100, experiments.ValueRange{Lo: 1, Hi: 10}},
		{100, experiments.ValueRange{Lo: 1, Hi: 100}},
	}
	for _, c := range cases {
		eng := benchEngine(b, benchSolver(b, int64(c.l)*c.r.Hi*c.r.Hi+1))
		rng := rand.New(rand.NewSource(11))
		x := randMat(rng, c.l, count, c.r.Lo, c.r.Hi)
		w := randMat(rng, 1, c.l, c.r.Lo, c.r.Hi)

		enc, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true})
		if err != nil {
			b.Fatal(err)
		}
		keys, err := eng.DotKeys(w)
		if err != nil {
			b.Fatal(err)
		}
		suffix := fmt.Sprintf("l=%d/v=%s", c.l, c.r)

		b.Run("a_encrypt/"+suffix, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Encrypt(x, securemat.EncryptOptions{SkipElems: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("b_keyderive/"+suffix, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.DotKeys(w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("c_compute_seq/"+suffix, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureDot(enc, keys, w,
					securemat.ComputeOptions{Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("d_compute_par/"+suffix, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.SecureDot(enc, keys, w,
					securemat.ComputeOptions{Parallelism: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 6 / Table III: training-step benchmarks ---------------------

// trainFixture builds matched plaintext/secure training state at the
// down-scaled MNIST geometry (7×7 inputs, 8 hidden units, batch 10).
type trainFixture struct {
	plain   *nn.Model
	trainer *core.Trainer
	x, y    *tensor.Dense
	enc     *core.EncryptedBatch
	opt     nn.Optimizer
}

func newTrainFixture(b *testing.B) *trainFixture {
	b.Helper()
	const (
		features = 49
		hidden   = 8
		batch    = 10
	)
	codec := fixedpoint.Default()
	mk := func(seed int64) *nn.Model {
		m, err := nn.NewMLP(features, mnist.Classes, []int{hidden}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	bound := max(core.SolverBound(codec, features, 1, 4, 1),
		core.SolverBound(codec, batch, 1, 4, 100))
	eng := benchEngine(b, benchSolver(b, bound))
	trainer, err := core.NewTrainer(mk(3), eng, core.Config{
		Codec: codec, Parallelism: 1, MaxWeight: 4, GradScale: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient(eng, codec, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	x := tensor.NewDense(features, batch)
	y := tensor.NewDense(mnist.Classes, batch)
	for j := 0; j < batch; j++ {
		for i := 0; i < features; i++ {
			x.Set(i, j, rng.Float64())
		}
		y.Set(j%mnist.Classes, j, 1)
	}
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := nn.NewSGD(0.3, 0)
	if err != nil {
		b.Fatal(err)
	}
	return &trainFixture{plain: mk(3), trainer: trainer, x: x, y: y, enc: enc, opt: opt}
}

// BenchmarkFig6SecureStep times one CryptoNN training step — the unit
// whose accumulation over 2 epochs is Table III's 57-hour column and
// whose per-batch accuracy traces Fig. 6's CryptoCNN curve.
func BenchmarkFig6SecureStep(b *testing.B) {
	f := newTrainFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.trainer.TrainBatch(f.enc, f.opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PlainStep times the plaintext twin's step (the LeNet-5
// baseline curve of Fig. 6 / the 4-hour column of Table III).
func BenchmarkFig6PlainStep(b *testing.B) {
	f := newTrainFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.plain.TrainBatch(f.x, f.y, f.opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ClientEncrypt times the client-side pre-processing
// (encryption) per batch — the cost the paper's training-time comparison
// folds into the client.
func BenchmarkFig6ClientEncrypt(b *testing.B) {
	client, err := core.NewClient(benchEngine(b, nil), fixedpoint.Default(), nil)
	if err != nil {
		b.Fatal(err)
	}
	f := newTrainFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.EncryptBatch(f.x, f.y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Epoch times one full epoch (4 batches) for both models,
// reporting the secure/plain pair that forms Table III's training-time
// ratio.
func BenchmarkTable3Epoch(b *testing.B) {
	const batches = 4
	b.Run("secure", func(b *testing.B) {
		f := newTrainFixture(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batches; k++ {
				if _, err := f.trainer.TrainBatch(f.enc, f.opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("plain", func(b *testing.B) {
		f := newTrainFixture(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batches; k++ {
				if _, err := f.plain.TrainBatch(f.x, f.y, f.opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkComm measures the §IV-B2 per-iteration key traffic: it runs
// one CryptoNN iteration per op and reports the authority's issuance
// counters as custom metrics (scalars/iter = the paper's k×n upload,
// ip-keys/iter and bo-keys/iter = the derived-key downloads).
func BenchmarkComm(b *testing.B) {
	res, err := experiments.CommOverhead(experiments.CommConfig{
		Features: 20, HiddenUnits: 8, Batch: 6, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CommOverhead(experiments.CommConfig{
			Features: 20, HiddenUnits: 8, Batch: 6, Seed: 7,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PredictedScalars), "fwd-scalars/iter")
	b.ReportMetric(float64(res.TotalIPKeys), "ip-keys/iter")
	b.ReportMetric(float64(res.TotalBOKeys), "bo-keys/iter")
}
