// MNIST: CryptoCNN — the paper's §III-E case study, scaled to a laptop.
//
// The paper instantiates CryptoNN as "CryptoCNN" on LeNet-5/MNIST and
// shows (Fig. 6, Table III) that training over encrypted images reaches
// the same accuracy as the plaintext baseline, at a large wall-clock
// cost. This example reproduces that comparison end to end:
//
//   - loads MNIST (real IDX files if MNIST_DIR is set, otherwise the
//     deterministic synthetic digit generator),
//   - trains a plaintext model and its CryptoNN twin from identical
//     initialisation — the twin sees only encrypted pixels and labels,
//   - prints the per-tick average batch accuracy of both (Fig. 6's
//     curves) and the final test accuracies plus the overhead factor
//     (Table III's rows).
//
// Flags scale the run; the defaults finish in a couple of minutes on one
// core. Use -arch cnn for the convolutional twin (secure convolution,
// Algorithm 3) — slower but exactly the paper's case study.
//
// Run with:
//
//	go run ./examples/mnist                 # dense first layer, fast
//	go run ./examples/mnist -arch cnn       # secure convolution
//	go run ./examples/mnist -pool 1 -hidden 32 -samples 600   # closer to paper scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cryptonn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mnist", flag.ContinueOnError)
	arch := fs.String("arch", "mlp", "architecture: mlp or cnn")
	samples := fs.Int("samples", 60, "training samples")
	test := fs.Int("test", 40, "test samples")
	batch := fs.Int("batch", 10, "batch size (paper: 64)")
	epochs := fs.Int("epochs", 2, "epochs (paper: 2)")
	pool := fs.Int("pool", 2, "input down-pooling factor (1 = paper's 28×28)")
	hidden := fs.Int("hidden", 16, "MLP hidden width (paper: 32)")
	par := fs.Int("par", -1, "decryption workers (-1 = NumCPU)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.TrainConfig{
		Arch:         experiments.Arch(*arch),
		TrainSamples: *samples,
		TestSamples:  *test,
		BatchSize:    *batch,
		Epochs:       *epochs,
		TickBatches:  2,
		Parallelism:  *par,
		Seed:         *seed,
		Pool:         *pool,
		Hidden:       *hidden,
	}

	src := "synthetic digits (set MNIST_DIR for the real IDX files)"
	if dir := os.Getenv("MNIST_DIR"); dir != "" {
		src = "IDX files from " + dir
	}
	fmt.Printf("dataset: %s\n", src)
	fmt.Printf("twins: plaintext %s vs CryptoNN %s, %d samples, batch %d, %d epoch(s)\n\n",
		*arch, *arch, *samples, *batch, *epochs)

	// Fig. 6: the two accuracy curves, batch by batch.
	fmt.Println("average batch accuracy (Fig. 6):")
	fmt.Printf("%-6s %-12s %-12s\n", "tick", "plaintext", "CryptoNN")
	start := time.Now()
	points, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	for _, p := range points {
		bar := func(v float64) string { return strings.Repeat("█", int(v*20+0.5)) }
		fmt.Printf("%-6d %-12.3f %-12.3f  |%s\n", p.Tick, p.Plain, p.CryptoNN, bar(p.CryptoNN))
	}
	fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Second))

	// Table III: per-epoch test accuracy and the overhead factor.
	res, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Println("test accuracy and training time (Table III):")
	fmt.Printf("%-10s", "model")
	for e := range res.PlainAcc {
		fmt.Printf(" epoch %d (acc)", e+1)
	}
	fmt.Printf(" %14s\n", "training time")
	fmt.Printf("%-10s", "plaintext")
	for _, a := range res.PlainAcc {
		fmt.Printf(" %13.2f%%", a*100)
	}
	fmt.Printf(" %14s\n", res.PlainTime.Round(time.Millisecond))
	fmt.Printf("%-10s", "CryptoNN")
	for _, a := range res.CryptoAcc {
		fmt.Printf(" %13.2f%%", a*100)
	}
	fmt.Printf(" %14s\n", res.CryptoTime.Round(time.Millisecond))
	fmt.Printf("\noverhead: CryptoNN is %.0f× slower (paper: 57h vs 4h ≈ 14×); "+
		"accuracy parity holds (paper: 93.12%% vs 93.04%%).\n", res.Overhead)
	fmt.Printf("client-side encryption (one-off): %s\n", res.EncryptTime.Round(time.Millisecond))
	return nil
}
