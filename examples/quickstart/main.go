// Quickstart: the CryptoNN crypto stack in five minutes.
//
// This example walks the three layers the framework is built from, bottom
// up, entirely in-process:
//
//  1. FEIP — functional encryption for inner products (Abdalla et al.):
//     encrypt a vector x, derive a key for a weight vector y, and recover
//     ⟨x, y⟩ from the ciphertext without ever decrypting x itself.
//  2. FEBO — the paper's functional encryption for basic arithmetic:
//     encrypt x, derive a key for (op, y), recover x op y.
//  3. Secure matrix computation (Algorithm 1): dot-products and
//     element-wise arithmetic over encrypted matrices — the exact
//     primitive the neural-network training loop consumes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cryptonn/internal/authority"
	"cryptonn/internal/dlog"
	"cryptonn/internal/febo"
	"cryptonn/internal/feip"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The trusted authority of Fig. 1: it owns the master secret keys and
	// hands out function-derived keys. group.TestParams() is an embedded
	// 64-bit DDH group — fast for demos; production uses 256-bit
	// (group.Embedded(group.PaperBits)).
	params := group.TestParams()
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return err
	}

	// A bounded discrete-log solver: every functional decryption ends
	// with recovering an exponent via baby-step giant-step, so the caller
	// must know an upper bound on the plaintext result.
	solver, err := dlog.NewSolver(params, 1_000_000)
	if err != nil {
		return err
	}

	fmt.Println("== 1. FEIP: inner products over encrypted vectors ==")
	x := []int64{3, -1, 4, 1, -5} // the client's private vector
	y := []int64{2, 7, 1, -8, 2}  // the server's weights (public to the server)

	mpk, err := auth.FEIPPublic(len(x))
	if err != nil {
		return err
	}
	ct, err := feip.Encrypt(mpk, x, nil) // client side
	if err != nil {
		return err
	}
	fk, err := auth.IPKey(y) // authority derives the key for y
	if err != nil {
		return err
	}
	got, err := feip.Decrypt(mpk, ct, fk, y, solver) // server side
	if err != nil {
		return err
	}
	want := int64(0)
	for i := range x {
		want += x[i] * y[i]
	}
	fmt.Printf("   ⟨x, y⟩ recovered from ciphertext: %d (plaintext check: %d)\n\n", got, want)

	fmt.Println("== 2. FEBO: basic arithmetic over an encrypted operand ==")
	bopk, err := auth.FEBOPublic()
	if err != nil {
		return err
	}
	secret := int64(123)
	bct, err := febo.Encrypt(bopk, secret, nil)
	if err != nil {
		return err
	}
	for _, op := range []febo.Op{febo.OpAdd, febo.OpSub, febo.OpMul} {
		const operand = 45
		key, err := auth.BOKey(bct.Cmt, op, operand)
		if err != nil {
			return err
		}
		res, err := febo.Decrypt(bopk, key, bct, op, operand, solver)
		if err != nil {
			return err
		}
		fmt.Printf("   enc(123) %s 45 = %d\n", op, res)
	}
	fmt.Println()

	fmt.Println("== 3. Secure matrix computation (Algorithm 1) ==")
	// A secure compute session: the Engine owns the key-service handle,
	// the solver, cached public keys and a dot-product function-key cache,
	// so neither side re-threads them through every call.
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		return err
	}
	// The client's private matrix X (features × samples)...
	X := [][]int64{
		{1, 2, 3},
		{4, 5, 6},
	}
	// ...and the server's weight matrix W (units × features).
	W := [][]int64{
		{1, 1},
		{2, -1},
	}
	encX, err := eng.Encrypt(X, securemat.EncryptOptions{})
	if err != nil {
		return err
	}
	Z, err := eng.Dot(encX, W, securemat.ComputeOptions{})
	if err != nil {
		return err
	}
	fmt.Println("   W·X over encrypted X:")
	for _, row := range Z {
		fmt.Printf("   %v\n", row)
	}

	// Element-wise subtraction (the P − Y step of secure evaluation).
	P := [][]int64{
		{0, 1, 0},
		{1, 0, 1},
	}
	D, err := eng.Elementwise(encX, securemat.ElementwiseSub, P, securemat.ComputeOptions{})
	if err != nil {
		return err
	}
	fmt.Println("   X − P over encrypted X:")
	for _, row := range D {
		fmt.Printf("   %v\n", row)
	}

	fmt.Println("\nThe server computed every result above without seeing x or X.")
	return nil
}
