// ICD: encrypted extreme multi-label classification over sparse records.
//
// The scenario behind the sparse engine: a hospital wants a cloud service
// to assign ICD diagnosis codes to discharge summaries without revealing
// the text. Each record is a bag-of-words vector — vocabulary size η in
// the thousands, well under 5% of coordinates non-zero — and the code set
// is huge, but only the top-k scoring codes per record matter.
//
// The sparse pipeline exploits both ends of that shape:
//
//   - the client encrypts only each record's support (EncryptSparse),
//     paying ~nnz exponentiations instead of η;
//   - the authority issues support-masked keys whose requests carry nnz
//     scalars instead of η (the support is revealed to the authority and
//     server — see docs/SPARSE.md for the leakage discussion);
//   - the server resolves only the k winning logits' discrete logs per
//     record (SecureDotTopK) instead of one per label.
//
// Run with:
//
//	go run ./examples/icd
//	go run ./examples/icd -eta 10000 -labels 5000 -density 0.01 -topk 10
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"cryptonn/internal/experiments"
	"cryptonn/internal/group"
)

func main() {
	eta := flag.Int("eta", 2000, "vocabulary size (input dimension η)")
	labels := flag.Int("labels", 200, "number of ICD codes (output labels)")
	batch := flag.Int("batch", 4, "records per encrypted batch")
	densities := flag.String("density", "0.005,0.01,0.05", "comma-separated input densities to sweep")
	topk := flag.Int("topk", 10, "codes decrypted per record")
	bits := flag.Int("bits", group.TestBits, "group modulus bits (paper setting: 256)")
	skipDense := flag.Bool("skip-dense", false, "skip the dense-path reference measurements")
	par := flag.Int("par", -1, "workers (-1 = NumCPU)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	var ds []float64
	for _, s := range strings.Split(*densities, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Fatalf("icd: bad density %q: %v", s, err)
		}
		ds = append(ds, d)
	}

	points, err := experiments.ICD(experiments.ICDConfig{
		Bits:        *bits,
		Eta:         *eta,
		Labels:      *labels,
		Batch:       *batch,
		Densities:   ds,
		TopK:        *topk,
		Parallelism: *par,
		SkipDense:   *skipDense,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("encrypted ICD coding: η=%d, %d labels, batch=%d, top-%d, %d-bit group\n",
		*eta, *labels, *batch, *topk, *bits)
	fmt.Printf("%-9s %7s %13s %13s %9s %12s %13s %13s %8s\n",
		"density", "nnz", "enc-sparse", "enc-dense", "enc-gain",
		"keyderive", "topk", "full-solve", "dlogs")
	for _, p := range points {
		encDense, encGain, full := "-", "-", "-"
		if p.EncryptDense > 0 {
			encDense = p.EncryptDense.Round(10e3).String()
			encGain = fmt.Sprintf("%.1fx", float64(p.EncryptDense)/float64(p.EncryptSparse))
		}
		if p.FullCompute > 0 {
			full = p.FullCompute.Round(10e3).String()
		}
		fmt.Printf("%-9g %7d %13s %13s %9s %12s %13s %13s %8s\n",
			p.Density, p.Nnz, p.EncryptSparse.Round(10e3), encDense, encGain,
			p.KeyDerive.Round(10e3), p.TopKCompute.Round(10e3), full,
			fmt.Sprintf("%d/%d", p.TopKSolved, p.TopKSolved+p.TopKSkipped))
	}
	fmt.Println("\ndlogs column: discrete logs solved / total output cells — the top-k head")
	fmt.Println("pays k solves per record; every skipped cell is a dlog never computed.")
}
