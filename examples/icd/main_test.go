package main

import (
	"fmt"
	"testing"

	"cryptonn/internal/experiments"
)

// TestICDSweepSmoke runs a miniature sweep end to end — the experiment
// cross-checks every secure result against plaintext internally.
func TestICDSweepSmoke(t *testing.T) {
	points, err := experiments.ICD(experiments.ICDConfig{
		Eta:       400,
		Labels:    60,
		Batch:     2,
		Densities: []float64{0.01, 0.1},
		TopK:      5,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, p := range points {
		if p.TopKSolved == 0 || p.Nnz == 0 {
			t.Errorf("density %g: degenerate point %+v", p.Density, p)
		}
		if p.TopKSolved+p.TopKSkipped != uint64(60*2) {
			t.Errorf("density %g: dlog accounting %d+%d != %d",
				p.Density, p.TopKSolved, p.TopKSkipped, 60*2)
		}
	}
}

// BenchmarkICDEndToEnd measures the whole encrypted coding pipeline —
// sparse encryption, masked key derivation, top-k decryption — at a
// scaled-down ICD shape, sweeping density and k.
func BenchmarkICDEndToEnd(b *testing.B) {
	for _, d := range []float64{0.01, 0.05} {
		for _, k := range []int{1, 10} {
			b.Run(fmt.Sprintf("density=%g/k=%d", d, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := experiments.ICD(experiments.ICDConfig{
						Eta:       1000,
						Labels:    200,
						Batch:     2,
						Densities: []float64{d},
						TopK:      k,
						SkipDense: true,
						Seed:      1,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
