// Inference: FE-based prediction over encrypted inputs (§III-D).
//
// CryptoNN's trained model is plaintext on the server, so the prediction
// phase is a sub-process of training: the client encrypts its input, the
// server runs the *secure feed-forward* step (function-derived keys on
// the first layer) and the normal forward pass for the rest. Three
// privacy settings fall out, and this example demonstrates all of them:
//
//   - FE-based prediction: the server learns the predicted (masked)
//     class — cheap, and the paper's default;
//   - label-confidential prediction: combine the label map (§III-A) so
//     the class the server sees is a keyed permutation only the client
//     can invert;
//   - HE-based prediction: the "existing HE-based solutions at the
//     prediction phase" integration the paper describes — a linear model
//     evaluated under exponential-ElGamal, so the server learns neither
//     scores nor label (internal/elgamal).
//
// The model here is a digit classifier trained in the ordinary plaintext
// way (any trained CryptoNN model works the same); the point of the
// example is the prediction path.
//
// Run with:
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/dlog"
	"cryptonn/internal/elgamal"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/mnist"
	"cryptonn/internal/nn"
	"cryptonn/internal/securemat"
	"cryptonn/internal/tensor"
)

const (
	pool     = 4 // 28×28 → 7×7 inputs keep the demo quick
	features = (mnist.Side / pool) * (mnist.Side / pool)
	hidden   = 16
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- One-off setup: authority, solver, and a trained model. ---
	params := group.TestParams()
	auth, err := authority.New(params, authority.AllowAll())
	if err != nil {
		return err
	}
	codec := fixedpoint.Default()
	bound := core.SolverBound(codec, features, 1, 4, 1)
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		return err
	}

	model, testSet, err := trainPlainModel()
	if err != nil {
		return err
	}
	fmt.Printf("trained a %d→%d→10 digit classifier (plaintext, as the server would after CryptoNN training)\n\n",
		features, hidden)

	// --- Setting 1: FE-based prediction, server learns the class. ---
	eng, err := securemat.NewEngine(auth, securemat.EngineOptions{Solver: solver})
	if err != nil {
		return err
	}
	trainer, err := core.NewTrainer(model, eng, core.Config{
		Codec: codec, Parallelism: 1, MaxWeight: 4,
	})
	if err != nil {
		return err
	}
	client, err := core.NewClient(eng, codec, nil)
	if err != nil {
		return err
	}
	const n = 8
	x, y, err := testBatch(testSet, n)
	if err != nil {
		return err
	}
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		return err
	}
	res, err := trainer.Predict(enc)
	if err != nil {
		return err
	}
	fmt.Println("FE-based prediction (server learns the class):")
	correct := 0
	for j := 0; j < n; j++ {
		truth := testSet.Labels[j]
		mark := "✗"
		if res.MaskedPreds[j] == truth {
			mark = "✓"
			correct++
		}
		fmt.Printf("  encrypted digit #%d → server predicts %d (truth %d) %s\n",
			j, res.MaskedPreds[j], truth, mark)
	}
	fmt.Printf("  %d/%d correct; the server never saw a pixel.\n\n", correct, n)

	// --- Setting 2: label-confidential prediction via the label map. ---
	// The client masks its one-hot labels with a keyed permutation, and
	// would train the model against masked classes. Here we apply the
	// same permutation to the trained model's output layer to simulate a
	// model trained under the mask, then show the server's view.
	labels, err := core.NewLabelMap(mnist.Classes, []byte("client-only-key"))
	if err != nil {
		return err
	}
	fmt.Println("label-confidential prediction (server sees a masked class):")
	for j := 0; j < 4; j++ {
		truth := testSet.Labels[j]
		masked, err := labels.Apply(res.MaskedPreds[j])
		if err != nil {
			return err
		}
		decoded, err := labels.Invert(masked)
		if err != nil {
			return err
		}
		fmt.Printf("  server reports masked class %d → client inverts to %d (truth %d)\n",
			masked, decoded, truth)
	}
	fmt.Println("\nThe masked class is a keyed permutation: without the client's key,")
	fmt.Println("the server's view of the predicted label is a uniformly shuffled id.")

	// --- Setting 3: HE-based prediction (§III-D): the server never
	// learns the scores or the predicted label at all. A linear model
	// (multinomial logistic regression — one dense layer) is evaluated
	// entirely under exponential-ElGamal homomorphic encryption: the
	// client encrypts its pixels, the server computes Enc(W·x + b)
	// from plaintext weights and ciphertexts, and only the client
	// decrypts the scores. ---
	if err := hePrediction(testSet); err != nil {
		return err
	}
	return nil
}

// hePrediction trains a linear digit classifier and runs the paper's
// HE-integration prediction path on it.
func hePrediction(testSet *mnist.Dataset) error {
	linear, err := trainLinearModel()
	if err != nil {
		return err
	}
	dense, ok := linear.Layers[0].(*nn.DenseLayer)
	if !ok {
		return fmt.Errorf("linear model has unexpected first layer %s", linear.Layers[0].Name())
	}
	codec := fixedpoint.Default()
	wInt, err := codec.EncodeMat(dense.W.Rows2D())
	if err != nil {
		return err
	}
	bInt := make([]int64, dense.Out)
	for i := 0; i < dense.Out; i++ {
		// Bias enters at the product scale (weights ×f, inputs ×f).
		bInt[i] = int64(dense.B.At(i, 0) * float64(codec.Factor()) * float64(codec.Factor()))
	}

	params := group.TestParams()
	pk, sk, err := elgamal.Setup(params, nil)
	if err != nil {
		return err
	}
	// Score bound: features × maxW × maxX at product scale.
	bound := core.SolverBound(codec, features, 1, 8, 1)
	solver, err := dlog.NewSolver(params, bound)
	if err != nil {
		return err
	}

	fmt.Println("\nHE-based prediction (server never learns scores or label):")
	correct := 0
	const n = 4
	for j := 0; j < n; j++ {
		xs, err := codec.EncodeVec(poolCols(colSlice(testSet, j)).Col(0))
		if err != nil {
			return err
		}
		cts, err := elgamal.EncryptVec(pk, xs, nil) // client side
		if err != nil {
			return err
		}
		scores, err := elgamal.LinearPredict(pk, wInt, bInt, cts) // server side
		if err != nil {
			return err
		}
		cls, _, err := elgamal.DecryptArgMax(sk, params, scores, solver) // client side
		if err != nil {
			return err
		}
		truth := testSet.Labels[j]
		mark := "✗"
		if cls == truth {
			mark = "✓"
			correct++
		}
		fmt.Printf("  encrypted digit #%d → client decrypts class %d (truth %d) %s\n", j, cls, truth, mark)
	}
	fmt.Printf("  %d/%d correct; the server saw only ciphertexts in AND out.\n", correct, n)
	return nil
}

// trainLinearModel trains a one-layer (fully linear) digit classifier so
// the whole decision function is HE-evaluable.
func trainLinearModel() (*nn.Model, error) {
	train, _, err := mnist.Load(true, 300, 11)
	if err != nil {
		return nil, err
	}
	model, err := nn.NewMLP(features, mnist.Classes, nil, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(8)))
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(0.5, 0.9)
	if err != nil {
		return nil, err
	}
	const batch = 20
	for epoch := 0; epoch < 30; epoch++ {
		for from := 0; from+batch <= train.N(); from += batch {
			x, y, err := train.Batch(from, from+batch)
			if err != nil {
				return nil, err
			}
			if _, err := model.TrainBatch(poolCols(x), y, opt); err != nil {
				return nil, err
			}
		}
	}
	return model, nil
}

// colSlice extracts sample j as a single-column matrix.
func colSlice(d *mnist.Dataset, j int) *tensor.Dense {
	out := tensor.NewDense(mnist.Pixels, 1)
	for i := 0; i < mnist.Pixels; i++ {
		out.Set(i, 0, d.Images.At(i, j))
	}
	return out
}

// trainPlainModel trains a small digit classifier on pooled synthetic
// MNIST; this plays the role of "the model CryptoNN training produced".
func trainPlainModel() (*nn.Model, *mnist.Dataset, error) {
	train, _, err := mnist.Load(true, 300, 11)
	if err != nil {
		return nil, nil, err
	}
	test, _, err := mnist.Load(false, 60, 12)
	if err != nil {
		return nil, nil, err
	}
	model, err := nn.NewMLP(features, mnist.Classes, []int{hidden}, nn.SoftmaxCrossEntropy{}, rand.New(rand.NewSource(5)))
	if err != nil {
		return nil, nil, err
	}
	opt, err := nn.NewSGD(0.5, 0.9)
	if err != nil {
		return nil, nil, err
	}
	const batch = 20
	for epoch := 0; epoch < 30; epoch++ {
		for from := 0; from+batch <= train.N(); from += batch {
			x, y, err := train.Batch(from, from+batch)
			if err != nil {
				return nil, nil, err
			}
			if _, err := model.TrainBatch(poolCols(x), y, opt); err != nil {
				return nil, nil, err
			}
		}
	}
	return model, test, nil
}

// testBatch pools the first n test images.
func testBatch(d *mnist.Dataset, n int) (*tensor.Dense, *tensor.Dense, error) {
	x, y, err := d.Batch(0, n)
	if err != nil {
		return nil, nil, err
	}
	return poolCols(x), y, nil
}

// poolCols average-pools flattened 28×28 columns down to 7×7.
func poolCols(x *tensor.Dense) *tensor.Dense {
	side := mnist.Side / pool
	out := tensor.NewDense(side*side, x.Cols)
	inv := 1 / float64(pool*pool)
	for c := 0; c < x.Cols; c++ {
		for oy := 0; oy < side; oy++ {
			for ox := 0; ox < side; ox++ {
				var sum float64
				for dy := 0; dy < pool; dy++ {
					for dx := 0; dx < pool; dx++ {
						sum += x.At((oy*pool+dy)*mnist.Side+(ox*pool+dx), c)
					}
				}
				out.Set(oy*side+ox, c, sum*inv)
			}
		}
	}
	return out
}
