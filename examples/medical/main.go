// Medical: the paper's motivating scenario (§I) as a running system.
//
// Several distributed federal clinics want to train a shared diagnostic
// model, but regulations forbid them from revealing patient records to
// the cloud service that does the training. CryptoNN's answer:
//
//   - a trusted *authority* sets up the functional-encryption keys,
//   - each *clinic* (client) encrypts its patient records locally and
//     submits only ciphertexts,
//   - the *server* trains the model over the encrypted records, learning
//     function outputs (W·X, P − Y) but never a single raw feature.
//
// This example runs all three entities as real TCP services on loopback:
// one authority, one training server, and three clinics with disjoint
// synthetic patient shards. Labels are additionally passed through a
// keyed random mapping (§III-A) so the server cannot even see which
// class is which.
//
// Run with:
//
//	go run ./examples/medical
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"cryptonn/internal/authority"
	"cryptonn/internal/core"
	"cryptonn/internal/fixedpoint"
	"cryptonn/internal/group"
	"cryptonn/internal/securemat"
	"cryptonn/internal/service"
	"cryptonn/internal/tensor"
	"cryptonn/internal/wire"
)

const (
	numClinics  = 3
	patientsPer = 24 // patients per clinic
	features    = 10 // vitals + lab results per record
	classes     = 2  // healthy / at-risk
	batchSize   = 6
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	logger := log.New(os.Stderr, "", log.Ltime)

	// --- Authority: key setup and issuance (Fig. 1, left). ---
	auth, err := authority.New(group.TestParams(), authority.AllowAll())
	if err != nil {
		return err
	}
	authL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	authSrv, err := wire.NewAuthorityServer(auth, log.New(os.Stderr, "authority: ", log.Ltime))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	authDone := make(chan struct{})
	go func() { defer close(authDone); _ = authSrv.Serve(ctx, authL) }()
	defer func() { cancel(); <-authDone }()
	logger.Printf("authority listening on %s", authL.Addr())

	// --- Server: collects encrypted shards, then trains (Fig. 1, right). ---
	serverKeys, err := wire.NewKeyServicePool(authL.Addr().String(), 2)
	if err != nil {
		return err
	}
	defer serverKeys.Close()
	trainSrv, err := service.New(serverKeys, service.Config{
		Features:    features,
		Classes:     classes,
		Hidden:      []int{8},
		Epochs:      12,
		LR:          1.0,
		Expect:      numClinics,
		ComputeLoss: true,
		Seed:        42,
		Logger:      log.New(os.Stderr, "server: ", log.Ltime),
	})
	if err != nil {
		return err
	}
	trainL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	type outcome struct {
		rep *service.Report
		err error
	}
	trained := make(chan outcome, 1)
	go func() {
		rep, err := trainSrv.Run(ctx, trainL)
		trained <- outcome{rep, err}
	}()
	logger.Printf("training server listening on %s", trainL.Addr())

	// --- Clinics: encrypt locally, submit ciphertexts. ---
	// All clinics share a label-mapping key (they coordinate among
	// themselves; the server and authority never see it).
	labelKey := []byte("shared-clinic-secret")
	labels, err := core.NewLabelMap(classes, labelKey)
	if err != nil {
		return err
	}
	for clinic := 0; clinic < numClinics; clinic++ {
		if err := submitClinic(clinic, authL.Addr().String(), trainL.Addr().String(), labels, logger); err != nil {
			return fmt.Errorf("clinic %d: %w", clinic, err)
		}
	}

	// --- Training completes on the server. ---
	res := <-trained
	if res.err != nil {
		return res.err
	}
	fmt.Println()
	fmt.Printf("trained on %d encrypted batches from %d clinics in %s\n",
		res.rep.Batches, res.rep.Clients, res.rep.TrainTime.Round(time.Millisecond))
	for e, l := range res.rep.EpochLoss {
		fmt.Printf("  epoch %d: secure cross-entropy loss %.4f\n", e+1, l)
	}

	// --- FE-based prediction (§III-D): a clinic submits an encrypted
	// record; the server returns the *masked* class, which only the
	// clinic (holding the label map) can translate. ---
	clientKeys, err := wire.DialKeyService(authL.Addr().String())
	if err != nil {
		return err
	}
	defer clientKeys.Close()
	clientEng, err := securemat.NewEngine(clientKeys, securemat.EngineOptions{})
	if err != nil {
		return err
	}
	client, err := core.NewClient(clientEng, fixedpoint.Default(), labels)
	if err != nil {
		return err
	}
	x, y, truth := clinicRecords(99, 4)
	enc, err := client.EncryptBatch(x, y)
	if err != nil {
		return err
	}
	masked, err := trainSrv.Predict(enc)
	if err != nil {
		return err
	}
	preds, err := labels.InvertAll(masked)
	if err != nil {
		return err
	}
	fmt.Println("\nencrypted prediction for 4 unseen patients:")
	correct := 0
	for i := range preds {
		name := "healthy"
		if preds[i] == 1 {
			name = "at-risk"
		}
		mark := "✗"
		if preds[i] == truth[i] {
			mark = "✓"
			correct++
		}
		fmt.Printf("  patient %d: server saw masked class %d → clinic decodes %q %s\n",
			i+1, masked[i], name, mark)
	}
	fmt.Printf("%d/%d correct — trained and predicted without revealing a single record\n",
		correct, len(preds))
	return nil
}

// submitClinic encrypts one clinic's shard and streams it to the training
// server.
func submitClinic(id int, authAddr, trainAddr string, labels *core.LabelMap, logger *log.Logger) error {
	keys, err := wire.DialKeyService(authAddr)
	if err != nil {
		return err
	}
	defer keys.Close()
	eng, err := securemat.NewEngine(keys, securemat.EngineOptions{})
	if err != nil {
		return err
	}
	client, err := core.NewClient(eng, fixedpoint.Default(), labels)
	if err != nil {
		return err
	}
	var batches []*core.EncryptedBatch
	for from := 0; from+batchSize <= patientsPer; from += batchSize {
		x, y, _ := clinicRecords(int64(id*1000+from), batchSize)
		enc, err := client.EncryptBatch(x, y)
		if err != nil {
			return err
		}
		batches = append(batches, enc)
	}
	conn, err := net.Dial("tcp", trainAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := wire.SubmitBatches(conn, batches); err != nil {
		return err
	}
	logger.Printf("clinic %d: submitted %d encrypted batch(es) (%d patients)", id, len(batches), patientsPer)
	return nil
}

// clinicRecords generates synthetic patient records with a learnable
// rule: patients whose weighted vitals exceed a threshold are at-risk.
// Returns (features × n) inputs, (classes × n) one-hot labels and the
// true class per patient.
func clinicRecords(seed int64, n int) (*tensor.Dense, *tensor.Dense, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewDense(features, n)
	y := tensor.NewDense(classes, n)
	truth := make([]int, n)
	for j := 0; j < n; j++ {
		var score float64
		for i := 0; i < features; i++ {
			v := rng.Float64() // normalized vital / lab value
			x.Set(i, j, v)
			if i < 4 { // the first four features drive the condition
				score += v
			}
		}
		cls := 0
		if score > 2 {
			cls = 1
		}
		truth[j] = cls
		y.Set(cls, j, 1)
	}
	return x, y, truth
}
