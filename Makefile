# Developer entry points. `make check` is the tier-1 gate (format + build +
# vet + tests); `make bench` emits the hot-path benchmarks in
# benchstat-comparable form (set COUNT=10 and pipe two runs into benchstat
# to compare; CI's bench-smoke job runs COUNT=1 BENCHTIME=10x so the
# benchmarks themselves cannot rot unnoticed).

GO        ?= go
COUNT     ?= 5
BENCHTIME ?= 1s
# The serving benchmark measures closed-loop rounds over loopback TCP;
# a fixed round count keeps its samples/sec numbers comparable across
# runs (time-based -benchtime would vary the round count with load).
SERVE_BENCHTIME ?= 200x
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: check fmt-check build vet staticcheck test race chaos bench bench-json

check: fmt-check build vet staticcheck test

# Formatting gate: CI fails the build when gofmt would rewrite anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The tool is pinned in CI; locally the target
# skips with a hint when the binary is absent, so `make check` works on a
# fresh machine without network access.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

# The engine's thread-safety contract (shared tables, one solver, one
# Montgomery context across many goroutines) under the race detector,
# plus the wire layer's coalescing dispatcher hammer and the threshold
# cluster (DKG, quorum fan-out, concurrent partial-key requests).
race:
	$(GO) test -race ./internal/group/ ./internal/feip/ ./internal/febo/ \
		./internal/elgamal/ ./internal/dlog/ ./internal/securemat/ \
		./internal/thresh/ ./internal/authority/ ./internal/wire/

# Fault-injection and robustness suites: the faultconn wrappers (drop /
# truncate / reset mid-stream), quorum behaviour against slow, dead, and
# corrupting nodes, and the chaos test that kills N-T cluster nodes in
# the middle of encrypted training and requires bit-identical weights.
chaos:
	$(GO) test -count 1 -run 'TestChaos|TestFault|TestQuorum|TestNodeServer|TestPartialProofs' \
		-v ./internal/wire/

# Hot-path benchmarks: group-level multiplication/exponentiation atoms,
# FEIP primitive costs (sequential + shared-key parallel encryption), the
# dlog solver (sequential + shared-table parallel), the securemat batched
# encrypt/decrypt pipelines, the prediction-serving throughput engine
# (coalesced vs serial over loopback TCP), the threshold-quorum
# key-derivation overhead vs a single authority, and the paper's Fig. 3
# element-wise pipeline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExp$$|BenchmarkFixedBasePow|BenchmarkMultiExp|BenchmarkPowGInt64|BenchmarkMulMont|BenchmarkBatchInv' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/group/
	$(GO) test -run '^$$' -bench 'BenchmarkEncrypt|BenchmarkDecrypt' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/feip/
	$(GO) test -run '^$$' -bench 'BenchmarkLookup' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/dlog/
	$(GO) test -run '^$$' -bench 'BenchmarkBatchedDecrypt|BenchmarkEncryptParallel|BenchmarkSecureElementwise$$|BenchmarkEngineDotKeyCache' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/securemat/
	$(GO) test -run '^$$' -bench 'BenchmarkServeCoalesced' \
		-count $(COUNT) -benchtime $(SERVE_BENCHTIME) ./internal/service/
	$(GO) test -run '^$$' -bench 'BenchmarkQuorumIPKeyBatch' \
		-count $(COUNT) -benchtime $(SERVE_BENCHTIME) ./internal/wire/
	$(GO) test -run '^$$' -bench 'BenchmarkFig3' -benchmem -count $(COUNT) -benchtime $(BENCHTIME) .

# Machine-readable perf snapshot: one short pass over the full bench suite,
# folded into BENCH_pr6.json (qualified benchmark name → ns/op, B/op,
# allocs/op, plus custom metrics like samples/sec) by cmd/benchjson.
# Commit the refreshed snapshot when a PR changes the perf story; diff two
# snapshots (or two CI artifacts) to see the trajectory without parsing
# benchmark text.
BENCH_JSON      ?= BENCH_pr6.json
JSON_COUNT      ?= 1
JSON_BENCHTIME  ?= 10x
bench-json:
	@$(MAKE) --no-print-directory bench COUNT=$(JSON_COUNT) BENCHTIME=$(JSON_BENCHTIME) > $(BENCH_JSON).txt
	@$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < $(BENCH_JSON).txt
	@rm -f $(BENCH_JSON).txt
	@echo "wrote $(BENCH_JSON)"
