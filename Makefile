# Developer entry points. `make check` is the tier-1 gate (format + build +
# vet + tests); `make bench` emits the hot-path benchmarks in
# benchstat-comparable form (set COUNT=10 and pipe two runs into benchstat
# to compare; CI's bench-smoke job runs COUNT=1 BENCHTIME=100ms so the
# benchmarks themselves cannot rot unnoticed).

GO        ?= go
COUNT     ?= 5
BENCHTIME ?= 1s
# The serving benchmark measures closed-loop rounds over loopback TCP;
# a fixed round count keeps its samples/sec numbers comparable across
# runs (time-based -benchtime would vary the round count with load).
SERVE_BENCHTIME ?= 200x
# The wire-codec benchmark opens up to 1024 real TCP connections per
# sub-benchmark; a smaller fixed round count keeps the full sweep short
# while still averaging thousands of requests per data point.
WIRE_BENCHTIME ?= 20x
# The sparse serving benchmark pays one dense full-solve per round at
# the paper's 256-bit parameter (~0.3 s each); a small fixed round
# count keeps the dense leg honest without dominating the suite.
SPARSE_BENCHTIME ?= 10x
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: check fmt-check build vet staticcheck govulncheck test race chaos bench bench-json

check: fmt-check build vet staticcheck test

# Formatting gate: CI fails the build when gofmt would rewrite anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. The tool is pinned in CI; locally the target
# skips with a hint when the binary is absent, so `make check` works on a
# fresh machine without network access.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Known-vulnerability scan over the module's call graph. Pinned in CI;
# locally the target skips with a hint when the binary is absent, same
# pattern as staticcheck.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

# The engine's thread-safety contract (shared tables, one solver, one
# Montgomery context across many goroutines) under the race detector,
# plus the wire layer's coalescing dispatcher hammer and the threshold
# cluster (DKG, quorum fan-out, concurrent partial-key requests).
race:
	$(GO) test -race ./internal/group/ ./internal/feip/ ./internal/febo/ \
		./internal/elgamal/ ./internal/dlog/ ./internal/securemat/ \
		./internal/thresh/ ./internal/authority/ ./internal/wire/ \
		./internal/service/

# Fault-injection and robustness suites: the faultconn wrappers (drop /
# truncate / reset mid-stream), quorum behaviour against slow, dead, and
# corrupting nodes, and the chaos test that kills N-T cluster nodes in
# the middle of encrypted training and requires bit-identical weights.
chaos:
	$(GO) test -count 1 -run 'TestChaos|TestFault|TestQuorum|TestNodeServer|TestPartialProofs' \
		-v ./internal/wire/

# Hot-path benchmarks: group-level multiplication/exponentiation atoms
# (dense + sparse MultiExp), FEIP primitive costs (sequential +
# shared-key parallel + coordinate-form sparse encryption), the dlog
# solver (sequential + shared-table parallel + the top-k descending
# scan), the securemat batched encrypt/decrypt pipelines, the
# prediction-serving throughput engine (coalesced vs serial over
# loopback TCP), the sparse serving sweep (dense full-solve vs
# coordinate-form full ranking vs top-k at the 256-bit parameter), the
# threshold-quorum key-derivation overhead vs a
# single authority, the paper's Fig. 3 element-wise pipeline, and the
# end-to-end sparse multi-label (ICD) sweep.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExp$$|BenchmarkFixedBasePow|BenchmarkMultiExp|BenchmarkPowGInt64|BenchmarkMulMont|BenchmarkBatchInv|BenchmarkCombVsWindow|BenchmarkColdStart' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/group/
	$(GO) test -run '^$$' -bench 'BenchmarkEncrypt|BenchmarkDecrypt' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/feip/
	$(GO) test -run '^$$' -bench 'BenchmarkLookup|BenchmarkTopKDecrypt' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/dlog/
	$(GO) test -run '^$$' -bench 'BenchmarkBatchedDecrypt|BenchmarkEncryptParallel|BenchmarkSecureElementwise$$|BenchmarkEngineDotKeyCache' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./internal/securemat/
	$(GO) test -run '^$$' -bench 'BenchmarkServeCoalesced' \
		-count $(COUNT) -benchtime $(SERVE_BENCHTIME) ./internal/service/
	$(GO) test -run '^$$' -bench 'BenchmarkServeWire' \
		-count $(COUNT) -benchtime $(WIRE_BENCHTIME) -timeout 30m ./internal/service/
	$(GO) test -run '^$$' -bench 'BenchmarkServeSparse' \
		-count $(COUNT) -benchtime $(SPARSE_BENCHTIME) -timeout 30m ./internal/service/
	$(GO) test -run '^$$' -bench 'BenchmarkQuorumIPKeyBatch' \
		-count $(COUNT) -benchtime $(SERVE_BENCHTIME) ./internal/wire/
	$(GO) test -run '^$$' -bench 'BenchmarkFig3' -benchmem -count $(COUNT) -benchtime $(BENCHTIME) .
	$(GO) test -run '^$$' -bench 'BenchmarkICDEndToEnd' \
		-benchmem -count $(COUNT) -benchtime $(BENCHTIME) ./examples/icd/

# Machine-readable perf snapshot: one short pass over the full bench suite,
# folded into BENCH_pr<N>.json (qualified benchmark name → ns/op, B/op,
# allocs/op, plus custom metrics like samples/sec) by cmd/benchjson.
# Commit the refreshed snapshot when a PR changes the perf story; diff two
# snapshots (or two CI artifacts) to see the trajectory without parsing
# benchmark text. The default output name is derived from the latest
# committed snapshot plus one, so `make bench-json` never silently
# overwrites the previous PR's history; pass BENCH_JSON=... to override.
BENCH_NEXT = $(shell n=$$(ls BENCH_pr*.json 2>/dev/null | sed -E 's/.*BENCH_pr([0-9]+)\.json/\1/' | sort -n | tail -1); echo $$(( $${n:-0} + 1 )))
BENCH_JSON      ?= BENCH_pr$(BENCH_NEXT).json
JSON_COUNT      ?= 1
# Time-based, not 10x: the gated atoms run in microseconds, so a
# 10-iteration sample is ~50µs of measurement — pure timer noise, and
# cmd/benchdiff would gate on garbage. 100ms/benchmark keeps the whole
# snapshot pass under a few minutes (the serving benchmarks keep their
# fixed round counts via SERVE_BENCHTIME/WIRE_BENCHTIME).
JSON_BENCHTIME  ?= 100ms
bench-json:
	@$(MAKE) --no-print-directory bench COUNT=$(JSON_COUNT) BENCHTIME=$(JSON_BENCHTIME) > $(BENCH_JSON).txt
	@$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < $(BENCH_JSON).txt
	@rm -f $(BENCH_JSON).txt
	@echo "wrote $(BENCH_JSON)"
