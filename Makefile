# Developer entry points. `make check` is the tier-1 gate (build + vet +
# tests); `make bench` emits the hot-path benchmarks in benchstat-comparable
# form (set COUNT=10 and pipe two runs into benchstat to compare).

GO    ?= go
COUNT ?= 5

.PHONY: check build vet test race bench

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The exponentiation engine's thread-safety contract (shared tables, one
# solver across many goroutines) under the race detector.
race:
	$(GO) test -race ./internal/group/ ./internal/feip/ ./internal/febo/ \
		./internal/elgamal/ ./internal/dlog/ ./internal/securemat/

# Hot-path benchmarks: group-level exponentiation atoms, FEIP primitive
# costs, and the paper's Fig. 3 element-wise pipeline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExp$$|BenchmarkFixedBasePow|BenchmarkMultiExp|BenchmarkPowGInt64' \
		-benchmem -count $(COUNT) ./internal/group/
	$(GO) test -run '^$$' -bench 'BenchmarkEncrypt|BenchmarkDecrypt' \
		-benchmem -count $(COUNT) ./internal/feip/
	$(GO) test -run '^$$' -bench 'BenchmarkLookup' \
		-benchmem -count $(COUNT) ./internal/dlog/
	$(GO) test -run '^$$' -bench 'BenchmarkFig3' -benchmem -count $(COUNT) .
